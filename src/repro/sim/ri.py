"""A concurrent Rights Issuer service on the event kernel.

The paper prices the *terminal's* crypto and never the server's — but a
deployed OMA DRM 2 service saturates on the RI side first: every
RegistrationResponse and every RO Response carries an RSA signature, the
RI consults OCSP for its own certificate status, and the replay cache it
checks nonces against grows with every served request. :class:`RIServer`
models that capacity explicitly:

* a bounded **signing queue** (:class:`~repro.sim.kernel.Resource`) with
  ``capacity`` concurrent signing units and an optional queue limit
  (requests beyond it are refused, the deterministic analogue of a
  connection-refused front-end);
* **service times priced from Table 1**: each request kind expands to
  the RSA/SHA-1/HMAC operations the RI performs for it, priced by the
  same :class:`~repro.core.costs.CostTable` +
  :class:`~repro.core.architecture.ArchitectureProfile` machinery as the
  terminal-side model — one tick of kernel time is one RI clock cycle;
* **OCSP fetch latency**: the RI refreshes its cached OCSP assertion
  when it has aged past ``ocsp_validity_seconds``, spending
  ``ocsp_fetch_ms`` of pure latency on the signing unit it holds (the
  same degraded-freshness window :mod:`repro.adversary.outage` models
  from the availability side);
* **replay-cache pressure**: every served request grows the nonce
  cache; lookups cost one HMAC probe plus a per-probe SHA-1 tree walk
  that deepens logarithmically with the cache population.

Per-request queue waits and sojourn latencies land in exact
:class:`~repro.core.stats.StreamingStats` (integer ticks), counters and
histograms in a :class:`~repro.obs.metrics.MetricsRegistry`, and — when
a tracer is attached — each served request becomes a span on the shared
virtual clock via :meth:`~repro.obs.tracer.Tracer.advance_to`.
"""

import math
from dataclasses import dataclass
from typing import Any, Dict, Generator, Optional, Tuple

from ..core.architecture import ArchitectureProfile
from ..core.costs import PAPER_TABLE1, CostTable
from ..core.stats import StreamingStats
from ..core.trace import Algorithm, OperationRecord, Phase
from ..obs.metrics import MetricsRegistry
from ..obs.tracer import NULL_TRACER
from .kernel import REJECTED, Acquire, Kernel, Release, Resource, Wait

#: Request kinds the RI serves, with the ROAP pass each one models.
REQUEST_KINDS = ("hello", "registration", "acquisition")

#: Octets of ROAP message body the RI hashes per request kind (canonical
#: sizes of the seed worlds' wire messages, rounded to a stable figure —
#: hashing is a rounding error next to the RSA work either way).
_MESSAGE_OCTETS = {"hello": 256, "registration": 2048,
                   "acquisition": 1536}

#: Default OCSP responder round-trip, in milliseconds of pure latency.
DEFAULT_OCSP_FETCH_MS = 50.0

#: Default validity window of a cached OCSP assertion, in seconds.
DEFAULT_OCSP_VALIDITY_SECONDS = 300


def _blocks_128(octets: int) -> int:
    """128-bit units covering ``octets`` (Table 1 normalization)."""
    return -(-octets * 8 // 128)


def service_records(kind: str) -> Tuple[OperationRecord, ...]:
    """The crypto the RI performs to serve one ``kind`` request.

    * ``hello`` — parse and answer a DeviceHello: hashing only.
    * ``registration`` — verify the device's signed RegistrationRequest
      (RSA public), hash the exchange, and sign the
      RegistrationResponse (RSA private).
    * ``acquisition`` — verify the signed RO Request (RSA public), wrap
      the REK/MAC material (AES), MAC the protected RO (HMAC), and sign
      the RO Response (RSA private).

    Replay-cache and OCSP costs are *not* here — they depend on server
    state and are added by :meth:`RIServer.service_ticks`.
    """
    if kind not in _MESSAGE_OCTETS:
        raise ValueError("unknown request kind %r (expected one of %s)"
                         % (kind, ", ".join(REQUEST_KINDS)))
    octets = _MESSAGE_OCTETS[kind]
    hash_record = OperationRecord(
        algorithm=Algorithm.SHA1, phase=Phase.REGISTRATION,
        label="ri-%s-hash" % kind, invocations=1,
        blocks=_blocks_128(octets))
    if kind == "hello":
        return (hash_record,)
    if kind == "registration":
        return (
            hash_record,
            OperationRecord(algorithm=Algorithm.RSA_PUBLIC,
                            phase=Phase.REGISTRATION,
                            label="ri-verify-request", invocations=1,
                            blocks=1),
            OperationRecord(algorithm=Algorithm.RSA_PRIVATE,
                            phase=Phase.REGISTRATION,
                            label="ri-sign-response", invocations=1,
                            blocks=1),
        )
    assert kind == "acquisition"
    return (
        OperationRecord(algorithm=Algorithm.SHA1,
                        phase=Phase.ACQUISITION,
                        label="ri-%s-hash" % kind, invocations=1,
                        blocks=_blocks_128(octets)),
        OperationRecord(algorithm=Algorithm.RSA_PUBLIC,
                        phase=Phase.ACQUISITION,
                        label="ri-verify-request", invocations=1,
                        blocks=1),
        OperationRecord(algorithm=Algorithm.AES_ENCRYPT,
                        phase=Phase.ACQUISITION,
                        label="ri-wrap-rek", invocations=1,
                        blocks=3),
        OperationRecord(algorithm=Algorithm.HMAC_SHA1,
                        phase=Phase.ACQUISITION,
                        label="ri-mac-ro", invocations=1,
                        blocks=_blocks_128(octets)),
        OperationRecord(algorithm=Algorithm.RSA_PRIVATE,
                        phase=Phase.ACQUISITION,
                        label="ri-sign-response", invocations=1,
                        blocks=1),
    )


@dataclass(frozen=True)
class RICapacity:
    """Sizing of one RI deployment: signing units and queue bound."""

    signing_units: int = 1
    queue_limit: Optional[int] = None

    def __post_init__(self) -> None:
        if self.signing_units < 1:
            raise ValueError("the RI needs at least one signing unit")
        if self.queue_limit is not None and self.queue_limit < 0:
            raise ValueError("the queue limit must be non-negative")


class RIServer:
    """One Rights Issuer instance serving requests on the kernel.

    Device processes drive it with ``yield from ri.serve(kind)``; the
    returned value is the request's sojourn latency in ticks, or
    ``None`` when the bounded queue refused the request.
    """

    def __init__(self, kernel: Kernel, profile: ArchitectureProfile,
                 cost_table: CostTable = PAPER_TABLE1,
                 capacity: RICapacity = RICapacity(),
                 ocsp_fetch_ms: float = DEFAULT_OCSP_FETCH_MS,
                 ocsp_validity_seconds: int =
                 DEFAULT_OCSP_VALIDITY_SECONDS,
                 replay_pressure: bool = True,
                 tracer=NULL_TRACER) -> None:
        self.kernel = kernel
        self.profile = profile
        self.cost_table = cost_table
        self.capacity = capacity
        self.tracer = tracer
        self.signing = Resource(kernel, "ri.signing",
                                capacity=capacity.signing_units,
                                queue_limit=capacity.queue_limit)
        self.ticks_per_second = profile.clock_hz
        self.ocsp_fetch_ticks = int(round(
            ocsp_fetch_ms / 1000.0 * self.ticks_per_second))
        self.ocsp_validity_ticks = (ocsp_validity_seconds
                                    * self.ticks_per_second)
        self.replay_pressure = replay_pressure
        self._ocsp_fetched_at: Optional[int] = None
        self._base_ticks = {
            kind: sum(cost_table.cycles(record,
                                        profile.implementation(
                                            record.algorithm))
                      for record in service_records(kind))
            for kind in REQUEST_KINDS
        }
        self.replay_entries = 0
        self.ocsp_fetches = 0
        self.served = 0
        self.refused = 0
        self.latency = StreamingStats()
        self.latency_by_kind: Dict[str, StreamingStats] = {
            kind: StreamingStats() for kind in REQUEST_KINDS}
        self.metrics = MetricsRegistry()

    # -- pricing ----------------------------------------------------------
    def base_ticks(self, kind: str) -> int:
        """State-free service demand of ``kind``: pure Table 1 pricing,
        no OCSP refresh, no replay-cache probe."""
        return self._base_ticks[kind]

    def replay_probe_ticks(self) -> int:
        """Cycles to check a nonce against the current replay cache.

        One keyed HMAC over the nonce plus a hash per level of a
        balanced lookup structure: ``ceil(log2(entries + 1))`` SHA-1
        invocations — the cache-pressure term that makes long-lived RI
        instances measurably slower per request.
        """
        table = self.cost_table
        impl = self.profile.implementation
        hmac = table.cost(Algorithm.HMAC_SHA1,
                          impl(Algorithm.HMAC_SHA1)).cycles(1, 2)
        depth = math.ceil(math.log2(self.replay_entries + 1)) \
            if self.replay_entries else 0
        probe = table.cost(Algorithm.SHA1,
                           impl(Algorithm.SHA1)).cycles(depth, depth * 2)
        return hmac + probe

    def service_ticks(self, kind: str) -> int:
        """Total signing-unit occupancy to serve ``kind`` right now.

        Stateful: includes an OCSP refresh when the cached assertion
        has aged out, and the replay-cache probe at the current cache
        population. Pure Table 1 pricing otherwise.
        """
        ticks = self._base_ticks[kind]
        if self.replay_pressure and kind != "hello":
            ticks += self.replay_probe_ticks()
        if kind == "registration":
            now = self.kernel.now
            if (self._ocsp_fetched_at is None
                    or now - self._ocsp_fetched_at
                    > self.ocsp_validity_ticks):
                ticks += self.ocsp_fetch_ticks
                self._ocsp_fetched_at = now
                self.ocsp_fetches += 1
        return ticks

    # -- the serving protocol ---------------------------------------------
    def serve(self, kind: str) -> Generator[Any, Any, Optional[int]]:
        """Serve one request; ``yield from`` this in a device process.

        Returns the request's sojourn latency in ticks (queue wait plus
        service), or ``None`` when the queue refused it.
        """
        if kind not in self._base_ticks:
            raise ValueError("unknown request kind %r (expected one of "
                             "%s)" % (kind, ", ".join(REQUEST_KINDS)))
        arrived = self.kernel.now
        grant = yield Acquire(self.signing)
        if grant is REJECTED:
            self.refused += 1
            self.metrics.counter("ri.refused")
            self.metrics.counter("ri.refused.%s" % kind)
            return None
        waited = self.kernel.now - arrived
        try:
            ticks = self.service_ticks(kind)
            self.tracer.advance_to(self.kernel.now)
            with self.tracer.span("ri.serve.%s" % kind, track="ri",
                                  waited_ticks=waited) as span:
                yield Wait(ticks)
                self.tracer.advance_to(self.kernel.now)
                span.set("service_ticks", ticks)
        finally:
            # The kernel delivers this Release during generator unwind
            # too, so an exception inside the critical section returns
            # the signing grant instead of deadlocking the queue.
            yield Release(self.signing)
        latency = self.kernel.now - arrived
        if kind != "hello":
            self.replay_entries += 1
        self.served += 1
        self.latency.add(latency)
        self.latency_by_kind[kind].add(latency)
        self.metrics.counter("ri.served")
        self.metrics.counter("ri.served.%s" % kind)
        self.metrics.histogram("ri.wait_ticks", waited)
        self.metrics.histogram("ri.latency_ticks.%s" % kind, latency)
        self.metrics.gauge("ri.queue_peak", self.signing.queue_depth
                           .maximum)
        return latency

    # -- aggregate views --------------------------------------------------
    def utilization(self) -> float:
        """Mean fraction of signing units busy so far."""
        return self.signing.utilization()

    def mean_queue_depth(self) -> float:
        """Time-average signing-queue length so far."""
        return self.signing.mean_queue_depth()

    def latency_ms(self, summary_attr: str = "mean") -> float:
        """A latency summary converted to milliseconds."""
        value = getattr(self.latency.summary(), summary_attr) or 0
        return value / self.ticks_per_second * 1000.0
