"""A concurrent Rights Issuer service on the event kernel.

The paper prices the *terminal's* crypto and never the server's — but a
deployed OMA DRM 2 service saturates on the RI side first: every
RegistrationResponse and every RO Response carries an RSA signature, the
RI consults OCSP for its own certificate status, and the replay cache it
checks nonces against grows with every served request. :class:`RIServer`
models that capacity explicitly:

* a bounded **signing queue** (:class:`~repro.sim.kernel.Resource`) with
  ``capacity`` concurrent signing units and an optional queue limit
  (requests beyond it are refused, the deterministic analogue of a
  connection-refused front-end);
* **service times priced from Table 1**: each request kind expands to
  the RSA/SHA-1/HMAC operations the RI performs for it, priced by the
  same :class:`~repro.core.costs.CostTable` +
  :class:`~repro.core.architecture.ArchitectureProfile` machinery as the
  terminal-side model — one tick of kernel time is one RI clock cycle;
* **OCSP fetch latency**: the RI refreshes its cached OCSP assertion
  when it has aged past ``ocsp_validity_seconds``, spending
  ``ocsp_fetch_ms`` of pure latency on the signing unit it holds (the
  same degraded-freshness window :mod:`repro.adversary.outage` models
  from the availability side);
* **replay-cache pressure**: every served request grows the nonce
  cache; lookups cost one HMAC probe plus a per-probe SHA-1 tree walk
  that deepens logarithmically with the cache population.

Per-request queue waits and sojourn latencies land in exact
:class:`~repro.core.stats.StreamingStats` (integer ticks), counters and
histograms in a :class:`~repro.obs.metrics.MetricsRegistry`, and — when
a tracer is attached — each served request becomes a span on the shared
virtual clock via :meth:`~repro.obs.tracer.Tracer.advance_to`.
"""

import math
from dataclasses import dataclass
from typing import Any, Dict, Generator, Mapping, Optional, Tuple

from ..core.architecture import ArchitectureProfile
from ..core.costs import PAPER_TABLE1, CostTable
from ..core.stats import StreamingStats
from ..core.trace import Algorithm, OperationRecord, Phase
from ..obs.metrics import MetricsRegistry
from ..obs.slo import DEFAULT_OBJECTIVES, Objective, SLOMonitor
from ..obs.tracer import NULL_TRACER
from .kernel import (REJECTED, TIMED_OUT, Acquire, Kernel, Release,
                     Resource, Wait)

#: Request kinds the RI serves, with the ROAP pass each one models.
REQUEST_KINDS = ("hello", "registration", "acquisition",
                 "domain-join")

#: Octets of ROAP message body the RI hashes per request kind (canonical
#: sizes of the seed worlds' wire messages, rounded to a stable figure —
#: hashing is a rounding error next to the RSA work either way).
_MESSAGE_OCTETS = {"hello": 256, "registration": 2048,
                   "acquisition": 1536, "domain-join": 1024}

#: Default request mix for open-load generation: the per-attempt request
#: pattern of the fleet engine (DeviceHello + RegistrationRequest per
#: registration attempt, one RORequest per acquisition) at the default
#: mix of flows. Domain joins are absent from the default mix — the
#: fleet scenarios are device-keyed — but the kind is priced and
#: servable for sweeps that include it.
DEFAULT_REQUEST_MIX: Mapping[str, float] = {
    "hello": 0.4, "registration": 0.4, "acquisition": 0.2}

#: Default OCSP responder round-trip, in milliseconds of pure latency.
DEFAULT_OCSP_FETCH_MS = 50.0

#: Default validity window of a cached OCSP assertion, in seconds.
DEFAULT_OCSP_VALIDITY_SECONDS = 300


def _blocks_128(octets: int) -> int:
    """128-bit units covering ``octets`` (Table 1 normalization)."""
    return -(-octets * 8 // 128)


def service_records(kind: str) -> Tuple[OperationRecord, ...]:
    """The crypto the RI performs to serve one ``kind`` request.

    * ``hello`` — parse and answer a DeviceHello: hashing only.
    * ``registration`` — verify the device's signed RegistrationRequest
      (RSA public), hash the exchange, and sign the
      RegistrationResponse (RSA private).
    * ``acquisition`` — verify the signed RO Request (RSA public), wrap
      the REK/MAC material (AES), MAC the protected RO (HMAC), and sign
      the RO Response (RSA private).
    * ``domain-join`` — verify the signed JoinDomainRequest (RSA
      public), wrap the domain key for the device (AES), MAC the
      domain-key payload (HMAC), and sign the JoinDomainResponse (RSA
      private). Priced under the registration phase: domain management
      is device-provisioning traffic, not per-content acquisition.

    Replay-cache and OCSP costs are *not* here — they depend on server
    state and are added by :meth:`RIServer.service_ticks`.
    """
    if kind not in _MESSAGE_OCTETS:
        raise ValueError("unknown request kind %r (expected one of %s)"
                         % (kind, ", ".join(REQUEST_KINDS)))
    octets = _MESSAGE_OCTETS[kind]
    hash_record = OperationRecord(
        algorithm=Algorithm.SHA1, phase=Phase.REGISTRATION,
        label="ri-%s-hash" % kind, invocations=1,
        blocks=_blocks_128(octets))
    if kind == "hello":
        return (hash_record,)
    if kind == "registration":
        return (
            hash_record,
            OperationRecord(algorithm=Algorithm.RSA_PUBLIC,
                            phase=Phase.REGISTRATION,
                            label="ri-verify-request", invocations=1,
                            blocks=1),
            OperationRecord(algorithm=Algorithm.RSA_PRIVATE,
                            phase=Phase.REGISTRATION,
                            label="ri-sign-response", invocations=1,
                            blocks=1),
        )
    if kind == "domain-join":
        return (
            hash_record,
            OperationRecord(algorithm=Algorithm.RSA_PUBLIC,
                            phase=Phase.REGISTRATION,
                            label="ri-verify-request", invocations=1,
                            blocks=1),
            OperationRecord(algorithm=Algorithm.AES_ENCRYPT,
                            phase=Phase.REGISTRATION,
                            label="ri-wrap-domain-key", invocations=1,
                            blocks=3),
            OperationRecord(algorithm=Algorithm.HMAC_SHA1,
                            phase=Phase.REGISTRATION,
                            label="ri-mac-domain-key", invocations=1,
                            blocks=_blocks_128(octets)),
            OperationRecord(algorithm=Algorithm.RSA_PRIVATE,
                            phase=Phase.REGISTRATION,
                            label="ri-sign-response", invocations=1,
                            blocks=1),
        )
    assert kind == "acquisition"
    return (
        OperationRecord(algorithm=Algorithm.SHA1,
                        phase=Phase.ACQUISITION,
                        label="ri-%s-hash" % kind, invocations=1,
                        blocks=_blocks_128(octets)),
        OperationRecord(algorithm=Algorithm.RSA_PUBLIC,
                        phase=Phase.ACQUISITION,
                        label="ri-verify-request", invocations=1,
                        blocks=1),
        OperationRecord(algorithm=Algorithm.AES_ENCRYPT,
                        phase=Phase.ACQUISITION,
                        label="ri-wrap-rek", invocations=1,
                        blocks=3),
        OperationRecord(algorithm=Algorithm.HMAC_SHA1,
                        phase=Phase.ACQUISITION,
                        label="ri-mac-ro", invocations=1,
                        blocks=_blocks_128(octets)),
        OperationRecord(algorithm=Algorithm.RSA_PRIVATE,
                        phase=Phase.ACQUISITION,
                        label="ri-sign-response", invocations=1,
                        blocks=1),
    )


@dataclass(frozen=True)
class RICapacity:
    """Sizing of one RI deployment: signing units and queue bound."""

    signing_units: int = 1
    queue_limit: Optional[int] = None

    def __post_init__(self) -> None:
        if self.signing_units < 1:
            raise ValueError("the RI needs at least one signing unit")
        if self.queue_limit is not None and self.queue_limit < 0:
            raise ValueError("the queue limit must be non-negative")


#: Terminal statuses of one served request, in conservation order:
#: every arrival ends in exactly one of them.
SERVE_STATUSES = ("served", "refused", "shed", "timed-out")


@dataclass(frozen=True)
class ServeOutcome:
    """What happened to one request driven through ``serve_request``.

    ``status`` is one of :data:`SERVE_STATUSES`:

    * ``served`` — granted and fully serviced; ``finished - arrived``
      is the sojourn latency.
    * ``refused`` — the bounded signing queue was full
      (:data:`~repro.sim.kernel.REJECTED`): the hard backstop.
    * ``shed`` — admission control declined it before it occupied a
      queue slot; ``shed_reason`` names the policy's rationale.
    * ``timed-out`` — its deadline/timeout expired while still queued
      (:data:`~repro.sim.kernel.TIMED_OUT`): it consumed queue space
      but zero service.
    """

    kind: str
    status: str
    arrived: int
    finished: int
    waited: int = 0
    service_ticks: int = 0
    shed_reason: str = ""

    @property
    def served(self) -> bool:
        """Whether the request was fully serviced."""
        return self.status == "served"

    @property
    def latency(self) -> int:
        """Sojourn ticks from arrival to resolution (any status)."""
        return self.finished - self.arrived


class RIServer:
    """One Rights Issuer instance serving requests on the kernel.

    Device processes drive it with ``yield from ri.serve(kind)``; the
    returned value is the request's sojourn latency in ticks, or
    ``None`` when the bounded queue refused the request. The richer
    ``yield from ri.serve_request(kind, deadline=..., timeout=...)``
    returns a :class:`ServeOutcome` and engages admission control and
    in-queue expiry.
    """

    def __init__(self, kernel: Kernel, profile: ArchitectureProfile,
                 cost_table: CostTable = PAPER_TABLE1,
                 capacity: RICapacity = RICapacity(),
                 ocsp_fetch_ms: float = DEFAULT_OCSP_FETCH_MS,
                 ocsp_validity_seconds: int =
                 DEFAULT_OCSP_VALIDITY_SECONDS,
                 replay_pressure: bool = True,
                 admission=None,
                 tracer=NULL_TRACER,
                 slo=None) -> None:
        self.kernel = kernel
        self.profile = profile
        self.cost_table = cost_table
        self.capacity = capacity
        self.tracer = tracer
        self.signing = Resource(kernel, "ri.signing",
                                capacity=capacity.signing_units,
                                queue_limit=capacity.queue_limit)
        self.ticks_per_second = profile.clock_hz
        self.ocsp_fetch_ticks = int(round(
            ocsp_fetch_ms / 1000.0 * self.ticks_per_second))
        self.ocsp_validity_ticks = (ocsp_validity_seconds
                                    * self.ticks_per_second)
        self.replay_pressure = replay_pressure
        self._ocsp_fetched_at: Optional[int] = None
        self._base_ticks = {
            kind: sum(cost_table.cycles(record,
                                        profile.implementation(
                                            record.algorithm))
                      for record in service_records(kind))
            for kind in REQUEST_KINDS
        }
        self.replay_entries = 0
        self.ocsp_fetches = 0
        self.served = 0
        self.refused = 0
        self.shed = 0
        self.timed_out = 0
        #: Signing-unit ticks spent serving requests (useful against
        #: the wasted-work share a retry storm produces).
        self.service_ticks_total = 0
        self.latency = StreamingStats()
        self.latency_by_kind: Dict[str, StreamingStats] = {
            kind: StreamingStats() for kind in REQUEST_KINDS}
        self.metrics = MetricsRegistry()
        #: Admission policy consulted on every ``serve_request``
        #: arrival; ``None`` admits everything (the historical path).
        self.admission = admission
        if admission is not None:
            admission.bind(self)
        #: Optional :class:`~repro.obs.slo.SLOMonitor`; every resolved
        #: :class:`ServeOutcome` is scored against it, so burn-rate
        #: alerts and exemplars ride the same virtual timeline as the
        #: latency statistics.
        self.slo = slo

    # -- pricing ----------------------------------------------------------
    def base_ticks(self, kind: str) -> int:
        """State-free service demand of ``kind``: pure Table 1 pricing,
        no OCSP refresh, no replay-cache probe."""
        return self._base_ticks[kind]

    def replay_probe_ticks(self) -> int:
        """Cycles to check a nonce against the current replay cache.

        One keyed HMAC over the nonce plus a hash per level of a
        balanced lookup structure: ``ceil(log2(entries + 1))`` SHA-1
        invocations — the cache-pressure term that makes long-lived RI
        instances measurably slower per request.
        """
        table = self.cost_table
        impl = self.profile.implementation
        hmac = table.cost(Algorithm.HMAC_SHA1,
                          impl(Algorithm.HMAC_SHA1)).cycles(1, 2)
        depth = math.ceil(math.log2(self.replay_entries + 1)) \
            if self.replay_entries else 0
        probe = table.cost(Algorithm.SHA1,
                           impl(Algorithm.SHA1)).cycles(depth, depth * 2)
        return hmac + probe

    def service_ticks(self, kind: str) -> int:
        """Total signing-unit occupancy to serve ``kind`` right now.

        Stateful: includes an OCSP refresh when the cached assertion
        has aged out, and the replay-cache probe at the current cache
        population. Pure Table 1 pricing otherwise.
        """
        ticks = self._base_ticks[kind]
        if self.replay_pressure and kind != "hello":
            ticks += self.replay_probe_ticks()
        if kind == "registration":
            now = self.kernel.now
            if (self._ocsp_fetched_at is None
                    or now - self._ocsp_fetched_at
                    > self.ocsp_validity_ticks):
                ticks += self.ocsp_fetch_ticks
                self._ocsp_fetched_at = now
                self.ocsp_fetches += 1
        return ticks

    def nominal_service_ticks(self, mix: Mapping[str, float] =
                              DEFAULT_REQUEST_MIX) -> float:
        """Mix-weighted mean service demand, in ticks, at an empty RI.

        The denominator of offered load: an RI with ``u`` signing
        units saturates near ``u * clock_hz / nominal_service_ticks``
        requests per second. Excludes the state-dependent terms (OCSP
        refresh, replay-cache growth), which is why measured
        utilization runs slightly above the nominal offered load at
        high rates. Admission policies size their budgets from this
        figure, which keeps one policy configuration meaningful on
        every architecture.
        """
        total = sum(mix.values())
        if total <= 0:
            raise ValueError("the request mix must have positive "
                             "weight")
        return sum(weight * self.base_ticks(kind)
                   for kind, weight in mix.items()) / total

    def attach_slo(self, objectives: Tuple[Objective, ...] =
                   DEFAULT_OBJECTIVES) -> SLOMonitor:
        """Bind a fresh SLO monitor sized to this server's service time.

        The monitor's service unit is the rounded mix-weighted nominal
        service demand, so the same objective set means the same thing
        on SW, SW/HW and HW profiles.
        """
        slot = max(1, int(round(self.nominal_service_ticks())))
        self.slo = SLOMonitor(slot_ticks=slot, objectives=objectives)
        return self.slo

    def _resolved(self, outcome: ServeOutcome) -> ServeOutcome:
        """Score a terminal outcome against the bound SLO monitor."""
        if self.slo is not None:
            self.slo.observe_outcome(outcome)
        return outcome

    # -- the serving protocol ---------------------------------------------
    def serve(self, kind: str) -> Generator[Any, Any, Optional[int]]:
        """Serve one request; ``yield from`` this in a device process.

        Returns the request's sojourn latency in ticks (queue wait plus
        service), or ``None`` when the queue refused it. A thin wrapper
        over :meth:`serve_request` preserving the PR 7 surface.
        """
        outcome = yield from self.serve_request(kind)
        if not outcome.served:
            return None
        return outcome.latency

    def serve_request(self, kind: str, deadline: Optional[int] = None,
                      timeout: Optional[int] = None
                      ) -> Generator[Any, Any, ServeOutcome]:
        """Serve one request under admission control and deadlines.

        ``deadline`` is an absolute kernel tick past which the answer
        is worthless to the caller; ``timeout`` a relative patience
        bound. Either (the tighter wins) arms an in-queue expiry, so a
        hopeless request stops occupying queue space instead of
        consuming service it cannot use — and a request arriving
        already past its deadline resolves ``timed-out`` on the spot.
        The bound admission policy is consulted first and may shed the
        arrival before it touches the queue at all.
        """
        if kind not in self._base_ticks:
            raise ValueError("unknown request kind %r (expected one of "
                             "%s)" % (kind, ", ".join(REQUEST_KINDS)))
        arrived = self.kernel.now
        priority = 0
        if self.admission is not None:
            priority = self.admission.priority(kind)
            reason = self.admission.admit(self, kind, arrived)
            if reason is not None:
                self.shed += 1
                self.metrics.counter("ri.shed")
                self.metrics.counter("ri.shed.%s" % kind)
                return self._resolved(ServeOutcome(
                    kind=kind, status="shed", arrived=arrived,
                    finished=arrived, shed_reason=reason))
        wait_budget = timeout
        if deadline is not None:
            remaining = deadline - arrived
            if remaining <= 0:
                self.timed_out += 1
                self.metrics.counter("ri.timed_out")
                self.metrics.counter("ri.timed_out.%s" % kind)
                return self._resolved(ServeOutcome(
                    kind=kind, status="timed-out", arrived=arrived,
                    finished=arrived))
            if wait_budget is None or remaining < wait_budget:
                wait_budget = remaining
        if self.admission is not None:
            self.admission.on_admitted(self, kind, arrived)
        grant = yield Acquire(self.signing, timeout=wait_budget,
                              priority=priority)
        if grant is REJECTED:
            if self.admission is not None:
                self.admission.on_departed(self, kind, self.kernel.now,
                                           "refused")
            self.refused += 1
            self.metrics.counter("ri.refused")
            self.metrics.counter("ri.refused.%s" % kind)
            return self._resolved(ServeOutcome(
                kind=kind, status="refused", arrived=arrived,
                finished=self.kernel.now))
        if grant is TIMED_OUT:
            if self.admission is not None:
                self.admission.on_departed(self, kind, self.kernel.now,
                                           "timed-out")
            self.timed_out += 1
            self.metrics.counter("ri.timed_out")
            self.metrics.counter("ri.timed_out.%s" % kind)
            waited = self.kernel.now - arrived
            self.metrics.histogram("ri.expired_wait_ticks", waited)
            return self._resolved(ServeOutcome(
                kind=kind, status="timed-out", arrived=arrived,
                finished=self.kernel.now, waited=waited))
        if self.admission is not None:
            self.admission.on_departed(self, kind, self.kernel.now,
                                       "granted")
        waited = self.kernel.now - arrived
        ticks = 0
        try:
            ticks = self.service_ticks(kind)
            self.tracer.advance_to(self.kernel.now)
            with self.tracer.span("ri.serve.%s" % kind, track="ri",
                                  waited_ticks=waited) as span:
                yield Wait(ticks)
                self.tracer.advance_to(self.kernel.now)
                span.set("service_ticks", ticks)
        finally:
            # The kernel delivers this Release during generator unwind
            # too, so an exception inside the critical section returns
            # the signing grant instead of deadlocking the queue.
            yield Release(self.signing)
        latency = self.kernel.now - arrived
        if kind != "hello":
            self.replay_entries += 1
        self.served += 1
        self.service_ticks_total += ticks
        self.latency.add(latency)
        self.latency_by_kind[kind].add(latency)
        self.metrics.counter("ri.served")
        self.metrics.counter("ri.served.%s" % kind)
        self.metrics.histogram("ri.wait_ticks", waited)
        self.metrics.histogram("ri.latency_ticks.%s" % kind, latency)
        self.metrics.gauge("ri.queue_peak", self.signing.queue_depth
                           .maximum)
        return self._resolved(ServeOutcome(
            kind=kind, status="served", arrived=arrived,
            finished=self.kernel.now, waited=waited,
            service_ticks=ticks))

    # -- aggregate views --------------------------------------------------
    def utilization(self) -> float:
        """Mean fraction of signing units busy so far."""
        return self.signing.utilization()

    def mean_queue_depth(self) -> float:
        """Time-average signing-queue length so far."""
        return self.signing.mean_queue_depth()

    def latency_ms(self, summary_attr: str = "mean") -> float:
        """A latency summary converted to milliseconds."""
        value = getattr(self.latency.summary(), summary_attr) or 0
        return value / self.ticks_per_second * 1000.0


def nominal_service_ticks(profile: ArchitectureProfile,
                          mix: Mapping[str, float] = DEFAULT_REQUEST_MIX
                          ) -> float:
    """Mix-weighted mean service demand of ``profile``, in ticks.

    Module-level convenience over
    :meth:`RIServer.nominal_service_ticks` for callers sizing a sweep
    before any server exists (a throwaway probe server prices it).
    """
    probe = RIServer(Kernel(seed="nominal", record_log=False), profile)
    return probe.nominal_service_ticks(mix)
