"""Deterministic discrete-event kernel: one heap, one virtual clock.

The fleet engine (:mod:`repro.usecases.fleet`) prices devices as if each
one had the Rights Issuer to itself — embarrassingly parallel, which is
exactly why it cannot express contention, queueing or saturation. This
kernel is the shared-clock substrate those phenomena need:

* **One binary event heap** keyed by ``(virtual_time, seq)``. ``seq`` is
  a monotone schedule counter, so simultaneous events pop in the order
  they were scheduled — FIFO-stable tie-breaking, never hash order.
* **Processes are generators.** A process yields :class:`Wait`,
  :class:`Acquire` and :class:`Release` commands; the kernel resumes it
  when the wait elapses or the resource grants. Nothing preemptive,
  nothing threaded: a run is a single deterministic fold over the heap.
* **Seeded per-entity DRBG streams.** :meth:`Kernel.stream` derives a
  ``random.Random`` from ``(kernel seed, stream name)`` — the same
  derivation idiom as the fleet's per-device draws, so no entity's
  randomness depends on any other entity's schedule.

**Determinism contract.** A kernel run is a pure function of
``(seed, registered processes)``: registration *order* does not matter
(pre-run spawns are sorted by ``(start, name)`` before seq assignment),
virtual time is integer ticks (no float accumulation order), and the
event log — every spawn, wait, grant, release and exit — is
bit-identical across runs, worker counts and pause/resume boundaries.
``tests/sim/test_determinism.py`` holds these properties under
Hypothesis; :meth:`Kernel.state_digest` exposes a stable digest of
``(clock, heap, DRBG states, queues)`` so paused kernels can be compared
mid-flight.

Tick units are the caller's choice; :mod:`repro.sim.ri` uses one tick
per RI clock cycle so service times come straight from the priced
:class:`~repro.core.costs.CostTable`.
"""

import heapq
from dataclasses import dataclass
from random import Random
from typing import Any, Dict, Generator, List, Optional, Tuple

from ..core.jitter import stream_seed
from ..core.stats import StreamingStats, TimeWeightedStats
# repro: allow[REP201] -- state digests are simulation bookkeeping, not protocol crypto; pricing them would distort every priced artifact
from ..crypto.sha1 import sha1

#: Sentinel sent into a process whose Acquire was refused (queue full).
REJECTED = object()

#: Sentinel sent into a process whose Acquire waited out its timeout:
#: the request expired *in the queue*, consuming no service.
TIMED_OUT = object()

#: Process generator type: yields commands, receives grants.
ProcessBody = Generator[Any, Any, Any]


@dataclass(frozen=True)
class Wait:
    """Suspend the yielding process for ``ticks`` of virtual time."""

    ticks: int

    def __post_init__(self) -> None:
        if not isinstance(self.ticks, int) or isinstance(self.ticks, bool):
            raise TypeError("waits must be integer ticks; quantize "
                            "continuous delays before yielding")
        if self.ticks < 0:
            raise ValueError("a process cannot wait backwards in time")


@dataclass(frozen=True)
class Acquire:
    """Request one unit of ``resource``; resumes with a grant token.

    The sent value is the grant — or :data:`REJECTED` when the bounded
    queue is full, or :data:`TIMED_OUT` when ``timeout`` ticks elapsed
    before a server freed up (the request expires in-queue without ever
    consuming service; ``timeout=0`` expires immediately unless a
    server is free right now). Lower ``priority`` values are granted
    first; equal priorities keep strict FIFO arrival order, so the
    default ``priority=0`` preserves the historical queue discipline
    exactly.
    """

    resource: "Resource"
    timeout: Optional[int] = None
    priority: int = 0

    def __post_init__(self) -> None:
        if self.timeout is not None:
            if not isinstance(self.timeout, int) \
                    or isinstance(self.timeout, bool):
                raise TypeError("acquire timeouts are integer ticks")
            if self.timeout < 0:
                raise ValueError("an acquire timeout cannot be "
                                 "negative")
        if not isinstance(self.priority, int) \
                or isinstance(self.priority, bool):
            raise TypeError("acquire priorities are integers")


@dataclass(frozen=True)
class Release:
    """Return one previously granted unit of ``resource``."""

    resource: "Resource"


class Process:
    """One schedulable entity: a named generator plus its bookkeeping."""

    __slots__ = ("name", "body", "state", "result", "_inbox")

    def __init__(self, name: str, body: ProcessBody) -> None:
        self.name = name
        self.body = body
        self.state = "pending"
        self.result: Any = None
        self._inbox: Any = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "Process(%r, %s)" % (self.name, self.state)


class _Waiter:
    """One queued Acquire: its process plus queue-discipline keys."""

    __slots__ = ("process", "enqueued", "priority", "order", "alive")

    def __init__(self, process: Process, enqueued: int, priority: int,
                 order: int) -> None:
        self.process = process
        self.enqueued = enqueued
        self.priority = priority
        self.order = order
        #: Cleared on grant or expiry; a dead waiter's pending expiry
        #: timer is a no-op (popped without advancing the clock).
        self.alive = True

    def sort_key(self) -> Tuple[int, int]:
        return (self.priority, self.order)


class _Expiry:
    """A heap entry that expires one queued waiter at its deadline."""

    __slots__ = ("resource", "waiter")

    def __init__(self, resource: "Resource", waiter: _Waiter) -> None:
        self.resource = resource
        self.waiter = waiter


class Kernel:
    """The discrete-event scheduler; see the module docstring."""

    def __init__(self, seed: str = "repro-sim",
                 record_log: bool = True) -> None:
        self.seed = seed
        self.record_log = record_log
        self.now = 0
        self._seq = 0
        self._heap: List[Tuple[int, int, Any]] = []
        self._pending: List[Tuple[int, Process]] = []
        self._processes: Dict[str, Process] = {}
        self._streams: Dict[str, Random] = {}
        self._resources: List["Resource"] = []
        self._running = False
        self.log: List[Tuple[Any, ...]] = []
        self.events_executed = 0

    # -- logging ----------------------------------------------------------
    def _log(self, kind: str, process: str, *detail: Any) -> None:
        if self.record_log:
            self.log.append((self.now, kind, process) + detail)

    def event_log(self) -> Tuple[Tuple[Any, ...], ...]:
        """The immutable event log (bit-identical per seed and spawns)."""
        return tuple(self.log)

    # -- entity plumbing --------------------------------------------------
    def stream(self, name: str) -> Random:
        """The seeded DRBG stream for entity ``name`` (memoized).

        Derived from ``(kernel seed, name)`` alone — independent of
        schedule order, other streams and first-use time.
        """
        rng = self._streams.get(name)
        if rng is None:
            rng = self._streams[name] = Random(stream_seed(self.seed,
                                                           name))
        return rng

    def spawn(self, name: str, body: ProcessBody,
              at: int = 0) -> Process:
        """Register process ``name`` to start ``at`` ticks from zero.

        Pre-run spawns are order-independent (sorted by ``(at, name)``
        before scheduling); spawns issued by a running process start at
        the current virtual time plus ``at`` and inherit the running
        process's deterministic position in the schedule.
        """
        if name in self._processes:
            raise ValueError("process name %r already registered" % name)
        if at < 0:
            raise ValueError("a process cannot start in the past")
        process = Process(name, body)
        self._processes[name] = process
        if self._running:
            # A spawn issued by a running process inherits that
            # process's deterministic position in the schedule — it is
            # scheduled (and logged) immediately.
            self._log_at(self.now + at, "spawn", name)
            self._schedule(process, self.now + at, None)
        else:
            self._pending.append((self.now + at, process))
        return process

    def process(self, name: str) -> Process:
        """Look up a registered process by name."""
        return self._processes[name]

    def _schedule(self, process: Process, at: int, inbox: Any) -> None:
        self._seq += 1
        process._inbox = inbox
        heapq.heappush(self._heap, (at, self._seq, process))

    def _schedule_timer(self, expiry: "_Expiry", at: int) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (at, self._seq, expiry))

    def _flush_pending(self) -> None:
        # Sorting by (start, name) before seq assignment is what makes
        # registration order immaterial: any permutation of the same
        # spawn set schedules identically.
        self._pending.sort(key=lambda entry: (entry[0], entry[1].name))
        for at, process in self._pending:
            self._log_at(at, "spawn", process.name)
            self._schedule(process, at, None)
        self._pending.clear()

    def _log_at(self, at: int, kind: str, process: str,
                *detail: Any) -> None:
        if self.record_log:
            self.log.append((at, kind, process) + detail)

    # -- the event loop ---------------------------------------------------
    def run(self, until: Optional[int] = None) -> int:
        """Execute events until the heap drains (or ``until`` passes).

        Returns the virtual time at exit. Pausing with ``until`` and
        calling ``run`` again replays exactly the schedule an unpaused
        run would have executed — the pause is invisible to processes.
        """
        if until is not None and until < self.now:
            raise ValueError("cannot run until a time already passed")
        self._flush_pending()
        self._running = True
        try:
            while self._heap:
                at, _seq, entry = self._heap[0]
                if until is not None and at > until:
                    self.now = until
                    return self.now
                heapq.heappop(self._heap)
                if isinstance(entry, _Expiry):
                    if not entry.waiter.alive:
                        # A cancelled timer (its waiter was granted or
                        # rejected first) is popped silently: no clock
                        # advance, no event executed, so a run with
                        # unfired timeouts is bit-identical to one
                        # that never armed them.
                        continue
                    self.now = at
                    self.events_executed += 1
                    entry.resource._expire(entry.waiter)
                    continue
                self.now = at
                self.events_executed += 1
                self._step(entry)
        finally:
            self._running = False
        if until is not None and until > self.now:
            self.now = until
        return self.now

    def close(self) -> None:
        """Close every unfinished process generator, silently.

        A run stopped at ``until`` leaves suspended generators behind
        — queued waiters, in-service holders, sleeping clients. Left
        to garbage collection, Python closes them lazily and prints
        an ignored ``RuntimeError`` whenever a ``finally: yield
        Release`` fires during close. Closing explicitly (and
        swallowing that structurally-inevitable yield) tears a stopped
        simulation down without noise. Idempotent; do not ``run`` the
        kernel afterwards.
        """
        for process in self._processes.values():
            close = getattr(process.body, "close", None)
            if close is None:
                continue
            try:
                close()
            except RuntimeError:
                # The process's ``finally: yield Release`` fired while
                # closing — the release it would have issued had it
                # finished. There is no scheduler left to hand it to.
                pass

    def _step(self, process: Process) -> None:
        process.state = "running"
        inbox, process._inbox = process._inbox, None
        try:
            command = process.body.send(inbox)
        except StopIteration as stop:
            process.state = "done"
            process.result = stop.value
            self._log("exit", process.name)
            return
        if isinstance(command, Wait):
            process.state = "waiting"
            self._log("wait", process.name, command.ticks)
            self._schedule(process, self.now + command.ticks, None)
        elif isinstance(command, Acquire):
            command.resource._request(process, timeout=command.timeout,
                                      priority=command.priority)
        elif isinstance(command, Release):
            command.resource._release(process)
        else:
            raise TypeError(
                "process %r yielded %r; expected Wait, Acquire or "
                "Release" % (process.name, command))

    # -- snapshots --------------------------------------------------------
    def state_digest(self) -> str:
        """A stable hex digest of the kernel's complete dynamic state.

        Two kernels with equal digests are in the same state: same
        clock, same heap (keys and process names), same DRBG stream
        states, same resource occupancy and queues. Used by the
        pause/resume property tests to prove a paused kernel is
        byte-for-byte the kernel an unpaused run passes through.
        """
        heap = sorted(
            (at, seq, entry.name, entry.state)
            if isinstance(entry, Process)
            else (at, seq, "timer:%s" % entry.waiter.process.name,
                  "armed" if entry.waiter.alive else "cancelled")
            for at, seq, entry in self._heap)
        pending = sorted((at, process.name)
                         for at, process in self._pending)
        streams = [(name, self._streams[name].getstate())
                   for name in sorted(self._streams)]
        resources = [resource._state_key()
                     for resource in self._resources]
        blob = repr((self.now, self._seq, heap, pending, streams,
                     resources)).encode("utf-8")
        return sha1(blob).hex()


class Resource:
    """A bounded pool of identical servers with a priority-FIFO queue.

    ``capacity`` units serve concurrently; further :class:`Acquire`
    requests queue ordered by ``(priority, arrival)`` — lower priority
    values first, strict FIFO inside a class, so the default priority 0
    reproduces the historical pure-FIFO discipline exactly. A
    ``queue_limit`` bounds the queue: requests beyond it resume
    immediately with :data:`REJECTED` instead of waiting — the
    deterministic analogue of a connection-refused front-end. An
    :class:`Acquire` ``timeout`` arms an in-queue expiry: if no server
    frees up in time the waiter resumes with :data:`TIMED_OUT`, having
    consumed zero service — the substrate deadline propagation needs.

    Occupancy and queue depth are tracked as exact integer areas
    (:class:`~repro.core.stats.TimeWeightedStats`), and per-grant queue
    waits as an exact distribution
    (:class:`~repro.core.stats.StreamingStats`), so Little's-law
    identities over a drained run hold bit-exactly.
    """

    def __init__(self, kernel: Kernel, name: str, capacity: int = 1,
                 queue_limit: Optional[int] = None) -> None:
        if capacity < 1:
            raise ValueError("a resource needs at least one server")
        if queue_limit is not None and queue_limit < 0:
            raise ValueError("the queue limit must be non-negative")
        self.kernel = kernel
        self.name = name
        self.capacity = capacity
        self.queue_limit = queue_limit
        self._busy = 0
        self._queue: List[_Waiter] = []
        self._order = 0
        self.grants = 0
        self.rejections = 0
        self.timeouts = 0
        self.busy_servers = TimeWeightedStats()
        self.queue_depth = TimeWeightedStats()
        self.wait_ticks = StreamingStats()
        kernel._resources.append(self)

    # -- kernel-facing mechanics ------------------------------------------
    def _grant(self, process: Process, waited: int) -> None:
        self._busy += 1
        self.busy_servers.observe(self._busy, self.kernel.now)
        self.grants += 1
        self.wait_ticks.add(waited)
        process.state = "granted"
        self.kernel._log("grant", process.name, self.name, waited)
        self.kernel._schedule(process, self.kernel.now, self)

    def _request(self, process: Process, timeout: Optional[int] = None,
                 priority: int = 0) -> None:
        now = self.kernel.now
        if self._busy < self.capacity and not self._queue:
            self._grant(process, 0)
        elif (self.queue_limit is not None
              and len(self._queue) >= self.queue_limit):
            self.rejections += 1
            process.state = "rejected"
            self.kernel._log("reject", process.name, self.name)
            self.kernel._schedule(process, now, REJECTED)
        elif timeout == 0:
            # Zero patience and no free server: the request expires on
            # arrival, before ever occupying a queue slot.
            self.timeouts += 1
            process.state = "timed-out"
            self.kernel._log("timeout", process.name, self.name, 0)
            self.kernel._schedule(process, now, TIMED_OUT)
        else:
            self._order += 1
            waiter = _Waiter(process, now, priority, self._order)
            index = len(self._queue)
            key = waiter.sort_key()
            while index > 0 \
                    and self._queue[index - 1].sort_key() > key:
                index -= 1
            self._queue.insert(index, waiter)
            self.queue_depth.observe(len(self._queue), now)
            process.state = "queued"
            self.kernel._log("enqueue", process.name, self.name)
            if timeout is not None:
                self.kernel._schedule_timer(_Expiry(self, waiter),
                                            now + timeout)

    def _release(self, process: Process) -> None:
        if self._busy < 1:
            raise ValueError(
                "process %r released %r, which has no unit out"
                % (process.name, self.name))
        now = self.kernel.now
        self._busy -= 1
        self.busy_servers.observe(self._busy, now)
        self.kernel._log("release", process.name, self.name)
        # The releasing process resumes first (it was scheduled before
        # the waiter it unblocks), then the head-of-line waiter — both
        # at the current tick, ordered by seq: FIFO, never hash order.
        self.kernel._schedule(process, now, None)
        if self._queue:
            waiter = self._queue.pop(0)
            # Granting cancels any armed expiry timer for this waiter.
            waiter.alive = False
            self.queue_depth.observe(len(self._queue), now)
            self._grant(waiter.process, now - waiter.enqueued)

    def _expire(self, waiter: _Waiter) -> None:
        """Fire one armed expiry: the waiter leaves the queue unserved."""
        waiter.alive = False
        self._queue.remove(waiter)
        now = self.kernel.now
        self.queue_depth.observe(len(self._queue), now)
        self.timeouts += 1
        waiter.process.state = "timed-out"
        self.kernel._log("timeout", waiter.process.name, self.name,
                         now - waiter.enqueued)
        self.kernel._schedule(waiter.process, now, TIMED_OUT)

    # -- statistics -------------------------------------------------------
    @property
    def busy(self) -> int:
        """Servers currently serving."""
        return self._busy

    @property
    def queued(self) -> int:
        """Requests currently waiting in the queue."""
        return len(self._queue)

    def utilization(self, span: Optional[int] = None) -> float:
        """Mean fraction of servers busy over ``[0, span]``."""
        span = self.kernel.now if span is None else span
        if not span:
            return 0.0
        return self.busy_servers.area_until(span) / (span * self.capacity)

    def mean_queue_depth(self, span: Optional[int] = None) -> float:
        """Time-average queue length over ``[0, span]``."""
        span = self.kernel.now if span is None else span
        return self.queue_depth.mean(span)

    def _state_key(self) -> Tuple[Any, ...]:
        return (self.name, self._busy, self.timeouts,
                tuple((waiter.process.name, waiter.enqueued,
                       waiter.priority, waiter.order)
                      for waiter in self._queue))


def drain(kernel: Kernel) -> int:
    """Run ``kernel`` to an empty heap; returns the final virtual time."""
    return kernel.run()
