"""Protocol episodes on the kernel — the equivalence bridge.

The kernel gives the repository concurrency; this module proves the
concurrency costs nothing in fidelity. A *device episode* is the full
consumption process one terminal runs — register, acquire, install,
consume — through the real protocol stack (:class:`~repro.drm.session
.RoapSession` over a clean, faulty or outage-scheduled channel, with or
without a :class:`~repro.drm.session.CircuitBreaker`), with the agent's
crypto metered. :func:`run_episode` executes it sequentially, exactly
like every pre-kernel test and analysis; :func:`run_kernel_episode`
executes the *same* episode as a kernel process.

The composition rule that makes both produce bit-identical traces: an
episode runs **synchronously inside one kernel event** (the protocol
stack is ordinary blocking code), and the simulation-clock seconds it
consumed — backoff waits, channel timeouts, breaker cool-downs — are
then mirrored onto the kernel heap as one :class:`~repro.sim.kernel
.Wait` per flow, at one tick per second. The kernel never reaches into
the episode's seeds, clocks or channels; it only spaces episodes on the
shared timeline. A contention-free single device therefore produces the
*same* metered trace — and hence the exact same
:class:`~repro.core.model.CostBreakdown` under every architecture — as
the sequential run; ``tests/sim/test_equivalence.py`` holds this
exactly for clean, lossy, and outage-plus-breaker channels.
"""

from dataclasses import dataclass, field
from typing import Any, Dict, Generator, Optional, Tuple

from ..adversary.outage import OutageRIChannel, OutageSchedule, OutageWindow
from ..core.architecture import ArchitectureProfile
from ..core.model import CostBreakdown, PerformanceModel
from ..core.trace import OperationTrace
from ..drm.rel import play_count
from ..drm.roap.faults import FaultPlan, FaultyChannel
from ..drm.roap.wire import WireChannel
from ..drm.session import (BreakerPolicy, CircuitBreaker, RetryPolicy,
                           RoapSession, SessionOutcome)
from ..usecases.world import RSA_BITS, DRMWorld
from .kernel import Kernel, Wait

#: Retry policy used by default in episode specs: small backoffs so
#: lossy episodes finish in simulated minutes, deterministic jitter.
EPISODE_RETRIES = RetryPolicy(max_attempts=5, base_backoff_seconds=1,
                              jitter_seconds=1)


@dataclass(frozen=True)
class EpisodeSpec:
    """Everything that determines one device episode, and nothing else.

    The spec is deliberately a value object: the sequential and the
    kernel runner both build their world from it independently, so
    nothing mutable can leak between the two executions being compared.
    """

    seed: str = "repro-sim-episode"
    rsa_bits: int = RSA_BITS
    content_octets: int = 4096
    plays: int = 5
    accesses: int = 1
    #: Message loss rate of the bearer; 0.0 selects a clean wire.
    loss_rate: float = 0.0
    fault_seed: str = "sim-episode-faults"
    #: RI downtime windows as (start, end) second pairs *relative to
    #: the episode's start* (the simulation clock begins at the DRM
    #: epoch, not zero); non-empty selects an outage channel
    #: (overrides ``loss_rate``).
    outages: Tuple[Tuple[int, int], ...] = ()
    #: Attach a circuit breaker (outage fast-fail + forgery cut-off).
    breaker: bool = False
    breaker_policy: BreakerPolicy = BreakerPolicy()
    retry: RetryPolicy = EPISODE_RETRIES
    #: Per-flow deadline budget in simulation seconds: each driven flow
    #: aborts (``deadline_exceeded``) rather than start an attempt — or
    #: sleep a backoff — it cannot finish inside the budget. ``None``
    #: keeps flows unbounded (the historical behavior).
    deadline_seconds: Optional[int] = None

    def __post_init__(self) -> None:
        if self.accesses < 0 or self.plays < 1:
            raise ValueError("plays must be positive and accesses "
                             "non-negative")
        if self.accesses > self.plays:
            raise ValueError("cannot access more times than the "
                             "license permits")
        if self.deadline_seconds is not None \
                and self.deadline_seconds < 0:
            raise ValueError("the deadline budget must be "
                             "non-negative")


@dataclass
class Episode:
    """A wired-up episode, ready to run: world, session, identifiers."""

    spec: EpisodeSpec
    world: DRMWorld
    session: RoapSession
    ro_id: str
    content_id: str


@dataclass
class EpisodeResult:
    """The terminal outcome and priced trace of one device episode."""

    spec: EpisodeSpec
    register: SessionOutcome
    acquire: Optional[SessionOutcome]
    installed: bool
    accesses: int
    elapsed_seconds: int
    trace: OperationTrace
    flow_seconds: Dict[str, int] = field(default_factory=dict)

    def breakdown(self, profile: ArchitectureProfile) -> CostBreakdown:
        """Price the episode's metered trace under one architecture."""
        return PerformanceModel().evaluate(self.trace, profile)


def build_episode(spec: EpisodeSpec, tracer=None) -> Episode:
    """Construct the world, channel and session one spec describes.

    ``tracer`` optionally attaches a :class:`~repro.obs.tracer.Tracer`
    to the agent's metered crypto, so the episode's priced operations
    land on the virtual cycle timeline (and can be folded by
    :mod:`repro.obs.profile`); the default keeps the historical
    tracer-free world, so existing episode traces stay byte-identical.
    """
    # repro: allow[REP202] -- DRMWorld.create seeds device DRBGs at provisioning time; the episode's protocol trace itself stays fully metered
    world = DRMWorld.create(seed=spec.seed, metered=True,
                            rsa_bits=spec.rsa_bits, tracer=tracer)
    content_id = "cid:%s" % spec.seed
    ro_id = "ro:%s" % spec.seed
    world.ci.publish(content_id, "audio/mpeg",
                     b"\x5a" * spec.content_octets,
                     "http://ri.example/shop")
    world.ri.add_offer(ro_id, world.ci.negotiate_license(content_id),
                       play_count(spec.plays))
    if spec.outages:
        epoch = world.clock.now
        schedule = OutageSchedule([OutageWindow(epoch + start,
                                                epoch + end)
                                   for start, end in spec.outages])
        channel: WireChannel = OutageRIChannel(world.ri, schedule,
                                               world.clock)
    elif spec.loss_rate > 0.0:
        plan = FaultPlan.lossy(spec.fault_seed, spec.loss_rate)
        channel = FaultyChannel(world.ri, plan, clock=world.clock)
    else:
        channel = WireChannel(world.ri)
    breaker = (CircuitBreaker(world.clock, spec.breaker_policy)
               if spec.breaker else None)
    session = RoapSession(world.agent, channel, spec.retry,
                          name="session/%s" % spec.seed,
                          breaker=breaker,
                          deadline_seconds=spec.deadline_seconds)
    return Episode(spec=spec, world=world, session=session, ro_id=ro_id,
                   content_id=content_id)


def _flow_steps(episode: Episode):
    """The episode's flows as (label, callable) pairs, in order.

    Each callable runs one protocol flow synchronously and returns
    whether the episode can continue past it. Shared by the sequential
    and the kernel runner, so the two cannot drift apart.
    """
    spec = episode.spec
    world = episode.world
    state: Dict[str, Any] = {"register": None, "acquire": None,
                             "installed": False, "accesses": 0}

    def register() -> bool:
        state["register"] = episode.session.register()
        return state["register"].completed

    def acquire() -> bool:
        state["acquire"] = episode.session.acquire(episode.ro_id)
        return state["acquire"].completed

    def use() -> bool:
        protected_ro = state["acquire"].value
        dcf = world.ci.get_dcf(episode.content_id)
        world.agent.install(protected_ro, dcf)
        state["installed"] = True
        for _ in range(spec.accesses):
            world.agent.consume(episode.content_id)
            state["accesses"] += 1
        return True

    return state, (("register", register), ("acquire", acquire),
                   ("use", use))


def _result(episode: Episode, state: Dict[str, Any], started: int,
            flow_seconds: Dict[str, int]) -> EpisodeResult:
    return EpisodeResult(
        spec=episode.spec, register=state["register"],
        acquire=state["acquire"], installed=state["installed"],
        accesses=state["accesses"],
        elapsed_seconds=episode.world.clock.now - started,
        trace=episode.world.agent_crypto.trace,
        flow_seconds=flow_seconds)


def run_episode(spec: EpisodeSpec, tracer=None) -> EpisodeResult:
    """The sequential reference execution of one episode."""
    episode = build_episode(spec, tracer=tracer)
    started = episode.world.clock.now
    flow_seconds: Dict[str, int] = {}
    state, steps = _flow_steps(episode)
    for label, step in steps:
        before = episode.world.clock.now
        proceed = step()
        flow_seconds[label] = episode.world.clock.now - before
        if not proceed:
            break
    return _result(episode, state, started, flow_seconds)


class KernelBoundClock:
    """A breaker clock that also sees kernel virtual time.

    The PR 6 breaker cools down on the episode's internal
    :class:`~repro.drm.clock.SimulationClock`; inside a kernel run that
    clock only advances while *this* episode executes, so an OPEN
    breaker could never reach HALF_OPEN through time other processes
    spent — the cool-down was wall-clock-independent but also
    kernel-blind. This adapter reports the episode's epoch plus the
    *maximum* of the world-clock seconds and the kernel ticks elapsed
    since binding (the episode mirrors its world seconds onto the
    kernel at one tick per second, so the two advance in lock-step for
    a solo episode — ``max`` therefore changes nothing in the
    contention-free equivalence bridge, while concurrent episodes let
    kernel time carry the cool-down deterministically).
    """

    def __init__(self, clock, kernel: Kernel) -> None:
        self._clock = clock
        self._kernel = kernel
        self._world_epoch = clock.now
        self._kernel_epoch = kernel.now

    @property
    def now(self) -> int:
        world = self._clock.now - self._world_epoch
        kernel = self._kernel.now - self._kernel_epoch
        return self._world_epoch + max(world, kernel)

    def advance(self, seconds: int) -> None:
        """Delegate waits to the real world clock (breaker never calls
        this, but clock consumers expect the surface)."""
        self._clock.advance(seconds)


def bind_breaker_to_kernel(session: RoapSession,
                           kernel: Kernel) -> None:
    """Bind ``session``'s breaker cool-down to kernel virtual time."""
    if session.breaker is not None:
        session.breaker.clock = KernelBoundClock(
            session.breaker.clock, kernel)


def episode_process(spec: EpisodeSpec,
                    results: Dict[str, EpisodeResult],
                    name: str,
                    kernel: Optional[Kernel] = None
                    ) -> Generator[Any, Any, EpisodeResult]:
    """The same episode as a kernel process body.

    Each flow runs synchronously inside one kernel event; the
    simulation-clock seconds it consumed are then mirrored onto the
    kernel as a :class:`Wait` at one tick per second, so concurrent
    episodes space out on the shared timeline exactly as their internal
    clocks did. The finished :class:`EpisodeResult` lands in
    ``results[name]`` (and in the process's ``result``). When the
    owning ``kernel`` is passed, a breaker-carrying episode has its
    cool-down bound to kernel virtual time (see
    :class:`KernelBoundClock`) so open/half-open transitions are
    deterministic under contention too.
    """
    episode = build_episode(spec)
    if kernel is not None:
        bind_breaker_to_kernel(episode.session, kernel)
    started = episode.world.clock.now
    flow_seconds: Dict[str, int] = {}
    state, steps = _flow_steps(episode)
    for label, step in steps:
        before = episode.world.clock.now
        proceed = step()
        elapsed = episode.world.clock.now - before
        flow_seconds[label] = elapsed
        if elapsed:
            yield Wait(elapsed)
        if not proceed:
            break
    result = _result(episode, state, started, flow_seconds)
    results[name] = result
    return result


def run_kernel_episode(spec: EpisodeSpec,
                       kernel: Optional[Kernel] = None,
                       name: str = "device/0") -> EpisodeResult:
    """Run one episode as the sole process of a kernel and return it.

    The contention-free composition the equivalence tests compare
    against :func:`run_episode`: same spec in, same
    :class:`EpisodeResult` out — bit-identical metered trace, exact
    :class:`~repro.core.model.CostBreakdown` equality.
    """
    kernel = kernel if kernel is not None else Kernel(
        seed="%s/kernel" % spec.seed)
    results: Dict[str, EpisodeResult] = {}
    kernel.spawn(name, episode_process(spec, results, name,
                                       kernel=kernel))
    kernel.run()
    return results[name]
