"""Deterministic discrete-event simulation (`docs/simulation.md`).

The kernel (:mod:`repro.sim.kernel`) is the shared-clock substrate the
per-device cost engine cannot provide: a binary event heap with
FIFO-stable tie-breaking, generator processes, seeded per-entity DRBG
streams, and a bit-identical event log per seed.
:mod:`repro.sim.queueing` validates it against closed-form queueing
laws; :mod:`repro.sim.ri` puts a concurrent Rights Issuer on it, priced
from the paper's Table 1; :mod:`repro.sim.fleet` drives the fleet
population and open Poisson load through that RI; and
:mod:`repro.sim.roap` proves kernel-run protocol episodes price
identically to sequential ones.
"""

from .kernel import (REJECTED, Acquire, Kernel, Process, Release,
                     Resource, Wait, drain)
from .queueing import (QueueObservation, deterministic_draw,
                       exponential_draw, exponential_ticks,
                       md1_mean_wait, mm1_mean_number, mm1_mean_wait,
                       offered_load, simulate_queue)
from .ri import (DEFAULT_OCSP_FETCH_MS, DEFAULT_OCSP_VALIDITY_SECONDS,
                 REQUEST_KINDS, RICapacity, RIServer, service_records)
from .fleet import (DEFAULT_REQUEST_MIX, ArchitectureLoadResult,
                    KernelFleetResult, OpenLoadResult,
                    nominal_service_ticks, run_fleet_kernel,
                    run_open_load)
from .roap import (EPISODE_RETRIES, Episode, EpisodeResult, EpisodeSpec,
                   build_episode, episode_process, run_episode,
                   run_kernel_episode)

__all__ = [
    "REJECTED", "Acquire", "Kernel", "Process", "Release", "Resource",
    "Wait", "drain",
    "QueueObservation", "deterministic_draw", "exponential_draw",
    "exponential_ticks", "md1_mean_wait", "mm1_mean_number",
    "mm1_mean_wait", "offered_load", "simulate_queue",
    "DEFAULT_OCSP_FETCH_MS", "DEFAULT_OCSP_VALIDITY_SECONDS",
    "REQUEST_KINDS", "RICapacity", "RIServer", "service_records",
    "DEFAULT_REQUEST_MIX", "ArchitectureLoadResult",
    "KernelFleetResult", "OpenLoadResult", "nominal_service_ticks",
    "run_fleet_kernel", "run_open_load",
    "EPISODE_RETRIES", "Episode", "EpisodeResult", "EpisodeSpec",
    "build_episode", "episode_process", "run_episode",
    "run_kernel_episode",
]
