"""Deterministic discrete-event simulation (`docs/simulation.md`).

The kernel (:mod:`repro.sim.kernel`) is the shared-clock substrate the
per-device cost engine cannot provide: a binary event heap with
FIFO-stable tie-breaking, generator processes, seeded per-entity DRBG
streams, in-queue expiry timers, and a bit-identical event log per
seed. :mod:`repro.sim.queueing` validates it against closed-form
queueing laws; :mod:`repro.sim.ri` puts a concurrent Rights Issuer on
it, priced from the paper's Table 1; :mod:`repro.sim.admission` adds
its overload-shedding policies; :mod:`repro.sim.fleet` drives the
fleet population and open Poisson load through that RI;
:mod:`repro.sim.overload` reproduces metastable retry storms against
it; and :mod:`repro.sim.roap` proves kernel-run protocol episodes
price identically to sequential ones.
"""

from .kernel import (REJECTED, TIMED_OUT, Acquire, Kernel, Process,
                     Release, Resource, Wait, drain)
from .queueing import (QueueObservation, deterministic_draw,
                       exponential_draw, exponential_ticks,
                       md1_mean_wait, mm1_mean_number, mm1_mean_wait,
                       offered_load, simulate_queue)
from .ri import (DEFAULT_OCSP_FETCH_MS, DEFAULT_OCSP_VALIDITY_SECONDS,
                 REQUEST_KINDS, SERVE_STATUSES, RICapacity, RIServer,
                 ServeOutcome, service_records)
from .admission import (ADMISSION_POLICIES, PRIORITY_CLASSES, AdmitAll,
                        AdmissionPolicy, CoDelShedder,
                        PriorityAdmission, TokenBucket, make_admission)
from .fleet import (DEFAULT_REQUEST_MIX, ArchitectureLoadResult,
                    KernelFleetResult, OpenLoadResult,
                    nominal_service_ticks, run_fleet_kernel,
                    run_open_load)
from .overload import (RETRY_DISCIPLINES, RETRY_POLICIES, BinStat,
                       RetryBudget, StormResult, StormSpec, run_storm)
from .roap import (EPISODE_RETRIES, Episode, EpisodeResult, EpisodeSpec,
                   KernelBoundClock, bind_breaker_to_kernel,
                   build_episode, episode_process, run_episode,
                   run_kernel_episode)

__all__ = [
    "REJECTED", "TIMED_OUT", "Acquire", "Kernel", "Process", "Release",
    "Resource", "Wait", "drain",
    "QueueObservation", "deterministic_draw", "exponential_draw",
    "exponential_ticks", "md1_mean_wait", "mm1_mean_number",
    "mm1_mean_wait", "offered_load", "simulate_queue",
    "DEFAULT_OCSP_FETCH_MS", "DEFAULT_OCSP_VALIDITY_SECONDS",
    "REQUEST_KINDS", "SERVE_STATUSES", "RICapacity", "RIServer",
    "ServeOutcome", "service_records",
    "ADMISSION_POLICIES", "PRIORITY_CLASSES", "AdmitAll",
    "AdmissionPolicy", "CoDelShedder", "PriorityAdmission",
    "TokenBucket", "make_admission",
    "DEFAULT_REQUEST_MIX", "ArchitectureLoadResult",
    "KernelFleetResult", "OpenLoadResult", "nominal_service_ticks",
    "run_fleet_kernel", "run_open_load",
    "RETRY_DISCIPLINES", "RETRY_POLICIES", "BinStat", "RetryBudget",
    "StormResult", "StormSpec", "run_storm",
    "EPISODE_RETRIES", "Episode", "EpisodeResult", "EpisodeSpec",
    "KernelBoundClock", "bind_breaker_to_kernel", "build_episode",
    "episode_process", "run_episode", "run_kernel_episode",
]
