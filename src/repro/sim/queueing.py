"""Queueing-theory plumbing: arrival draws, closed forms, harness.

A simulation kernel is only as trustworthy as its invariants, and for a
single-server queue the invariants are a century old: Little's law and
the Pollaczek-Khinchine mean-wait formulas for M/M/1 and M/D/1. This
module provides both sides of that comparison —

* **draws**: quantized exponential inter-arrival/service times from a
  seeded DRBG stream (ticks are integers; quantization error is
  negligible once mean >> 1 tick);
* **closed forms**: the analytic mean waits and occupancies the kernel
  must reproduce (``tests/sim/test_queueing_laws.py`` holds them to
  <=2 %);
* **harness**: :func:`simulate_queue`, an open single-queue simulation
  whose :class:`QueueObservation` exposes the exact integer areas the
  laws are stated over.

Every quantity is measured over the *drained* horizon — the run ends
when the last job departs — so boundary terms vanish and the sample-path
form of Little's law (``integral of N(t) == sum of sojourn times``)
holds bit-exactly, not just in expectation.
"""

import math
from dataclasses import dataclass
from random import Random
from typing import Callable, Optional

from ..core.stats import StreamingStats
from .kernel import REJECTED, Acquire, Kernel, Release, Resource, Wait

#: A draw function: given a DRBG stream, the next duration in ticks.
TickDraw = Callable[[Random], int]


# -- distribution draws ----------------------------------------------------

def exponential_ticks(rng: Random, mean_ticks: float) -> int:
    """One exponential duration with the given mean, in whole ticks.

    Inverse-CDF sampling: ``-mean * ln(1 - U)`` with ``U`` uniform in
    ``[0, 1)``, rounded to the nearest tick. Rounding keeps the mean
    unbiased to O(1/mean); use means well above one tick.
    """
    if mean_ticks <= 0:
        raise ValueError("the mean must be positive")
    return int(round(-mean_ticks * math.log(1.0 - rng.random())))


def exponential_draw(mean_ticks: float) -> TickDraw:
    """A :data:`TickDraw` of exponential durations with ``mean_ticks``."""
    def draw(rng: Random) -> int:
        return exponential_ticks(rng, mean_ticks)
    return draw


def deterministic_draw(ticks: int) -> TickDraw:
    """A :data:`TickDraw` of one constant duration (D service)."""
    if ticks < 0:
        raise ValueError("durations must be non-negative")
    def draw(rng: Random) -> int:
        return ticks
    return draw


# -- closed forms ----------------------------------------------------------

def offered_load(arrival_rate: float, service_rate: float) -> float:
    """The offered load ``rho = lambda / mu`` of a single server."""
    if service_rate <= 0:
        raise ValueError("the service rate must be positive")
    return arrival_rate / service_rate


def mm1_mean_wait(arrival_rate: float, service_rate: float) -> float:
    """M/M/1 mean wait *in queue* ``Wq = rho / (mu - lambda)``."""
    rho = offered_load(arrival_rate, service_rate)
    if rho >= 1.0:
        raise ValueError("M/M/1 has no steady state at rho >= 1")
    return rho / (service_rate - arrival_rate)

def md1_mean_wait(arrival_rate: float, service_rate: float) -> float:
    """M/D/1 mean wait *in queue* ``Wq = rho / (2 mu (1 - rho))``.

    The Pollaczek-Khinchine formula with zero service variance — half
    the M/M/1 wait at every load, which is exactly the separation the
    validation suite checks the kernel reproduces.
    """
    rho = offered_load(arrival_rate, service_rate)
    if rho >= 1.0:
        raise ValueError("M/D/1 has no steady state at rho >= 1")
    return rho / (2.0 * service_rate * (1.0 - rho))


def mm1_mean_number(arrival_rate: float, service_rate: float) -> float:
    """M/M/1 mean number *in system* ``L = rho / (1 - rho)``."""
    rho = offered_load(arrival_rate, service_rate)
    if rho >= 1.0:
        raise ValueError("M/M/1 has no steady state at rho >= 1")
    return rho / (1.0 - rho)


# -- the measurement harness ----------------------------------------------

@dataclass
class QueueObservation:
    """Exact measurements of one drained single-queue run.

    Integer fields are exact; every law the validation suite asserts is
    stated over them. ``span_ticks`` is the drain time — the departure
    instant of the last job.
    """

    arrivals: int
    completed: int
    span_ticks: int
    wait: StreamingStats
    sojourn: StreamingStats
    service: StreamingStats
    queue_area: int
    busy_area: int
    #: Kernel events executed over the run (throughput denominator).
    events: int = 0

    @property
    def system_area(self) -> int:
        """Exact integral of number-in-system over the drained span."""
        return self.queue_area + self.busy_area

    def arrival_rate(self) -> float:
        """Realized arrivals per tick."""
        return self.arrivals / self.span_ticks if self.span_ticks else 0.0

    def utilization(self) -> float:
        """Realized fraction of time the server was busy."""
        return (self.busy_area / self.span_ticks
                if self.span_ticks else 0.0)

    def mean_number_in_system(self) -> float:
        """Time-average jobs in system, ``L`` of Little's law."""
        return (self.system_area / self.span_ticks
                if self.span_ticks else 0.0)

    def mean_queue_depth(self) -> float:
        """Time-average jobs waiting, ``Lq`` of Little's law."""
        return (self.queue_area / self.span_ticks
                if self.span_ticks else 0.0)


def simulate_queue(seed: str, jobs: int, interarrival: TickDraw,
                   service: TickDraw, capacity: int = 1,
                   queue_limit: Optional[int] = None,
                   record_log: bool = False) -> QueueObservation:
    """Run an open single-queue system to drain and measure it exactly.

    A source process draws ``jobs`` inter-arrival gaps from the
    ``arrivals`` DRBG stream and spawns one job process per arrival;
    each job draws its service demand from the ``service`` stream at
    arrival (so draws depend only on arrival order, never on
    scheduling), queues for the server pool, holds a server for its
    demand and departs.
    """
    if jobs < 1:
        raise ValueError("at least one job is required")
    kernel = Kernel(seed=seed, record_log=record_log)
    server = Resource(kernel, "server", capacity=capacity,
                      queue_limit=queue_limit)
    arrival_rng = kernel.stream("arrivals")
    service_rng = kernel.stream("service")
    observation = QueueObservation(
        arrivals=0, completed=0, span_ticks=0,
        wait=StreamingStats(), sojourn=StreamingStats(),
        service=StreamingStats(), queue_area=0, busy_area=0)

    def job(demand: int) -> "object":
        arrived = kernel.now
        grant = yield Acquire(server)
        if grant is REJECTED:
            return None
        observation.wait.add(kernel.now - arrived)
        try:
            yield Wait(demand)
        finally:
            # Released during unwind as well: a fault while in service
            # must not strand the server slot.
            yield Release(server)
        observation.completed += 1
        observation.sojourn.add(kernel.now - arrived)
        return None

    def source() -> "object":
        for index in range(jobs):
            yield Wait(interarrival(arrival_rng))
            demand = service(service_rng)
            observation.arrivals += 1
            observation.service.add(demand)
            kernel.spawn("job/%d" % index, job(demand))
        return None

    kernel.spawn("source", source())
    kernel.run()
    observation.span_ticks = kernel.now
    observation.events = kernel.events_executed
    observation.queue_area = server.queue_depth.area_until(kernel.now)
    observation.busy_area = server.busy_servers.area_until(kernel.now)
    return observation
