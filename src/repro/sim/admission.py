"""Admission control for the Rights Issuer: shed early, shed cheap.

The PR 7 RI had exactly two answers to overload: queue the request or
— past the queue bound — refuse it (:data:`~repro.sim.kernel.REJECTED`,
the connection-refused analogue). Neither protects goodput: a queue
admits work it can no longer serve in time, and a hard refusal tells
the client nothing a retry storm will respect. This module adds the
third answer production systems use, an explicit **SHED**: the RI
declines the request *before* it occupies a queue slot, spending zero
service and signalling deliberate overload (distinct from ``REJECTED``
in every counter, metric and
:class:`~repro.sim.ri.ServeOutcome.status`).

Three policies, all deterministic and integer-exact:

* :class:`TokenBucket` — classic rate limiting: requests drain a
  bucket refilled at a fixed fraction of the RI's nominal capacity
  (mix-weighted Table 1 service demand), with a bounded burst. Sheds
  exactly when the offered rate exceeds the configured fraction.
* :class:`CoDelShedder` — queue-delay shedding in the spirit of CoDel:
  the policy tracks the *work backlog* (admitted-but-unstarted service
  ticks) and sheds once the implied queue delay has stayed above
  ``target`` for at least ``interval``. Transient bursts ride through;
  standing queues are cut.
* :class:`PriorityAdmission` — priority classes with per-class bounded
  queues: registration outranks domain-join outranks acquisition (a
  device that cannot register can do nothing else, so registrations
  are the last traffic to shed), and each class has its own pending
  bound so a flood of one kind cannot starve the queue for the others.
  The class index doubles as the :class:`~repro.sim.kernel.Acquire`
  priority, so admitted registrations also overtake queued
  acquisitions.

Policies are bound to one :class:`~repro.sim.ri.RIServer` via
:meth:`AdmissionPolicy.bind` (deriving tick budgets from the server's
own Table 1 pricing) and consulted by
:meth:`~repro.sim.ri.RIServer.serve_request` on every arrival. All
policy parameters are expressed in *service units* — multiples of the
mix-weighted mean service demand — so one configuration means the same
thing on the SW, SW/HW and HW architectures.
"""

from typing import Dict, Mapping, Optional

#: Priority class per request kind: lower is served first. Registration
#: (and its DeviceHello) outranks domain management outranks RO
#: acquisition — the ordering of how much future traffic each request
#: unlocks.
PRIORITY_CLASSES: Mapping[str, int] = {
    "hello": 0, "registration": 0, "domain-join": 1, "acquisition": 2}


class AdmissionPolicy:
    """Base policy: admit everything (the historical behavior).

    Subclasses override :meth:`admit` to return a shed reason (a short
    string) instead of ``None``. The bookkeeping hooks
    (:meth:`on_admitted`, :meth:`on_departed`) bracket a request's time
    between admission and its grant/refusal/expiry, which is exactly
    the backlog a delay-based shedder needs.
    """

    name = "none"

    def bind(self, ri) -> None:
        """Derive tick budgets from the server this policy guards."""

    def admit(self, ri, kind: str, now: int) -> Optional[str]:
        """``None`` to admit, or a shed reason to refuse early."""
        return None

    def priority(self, kind: str) -> int:
        """The :class:`~repro.sim.kernel.Acquire` priority to queue at."""
        return 0

    def on_admitted(self, ri, kind: str, now: int) -> None:
        """An admitted request entered the signing queue."""

    def on_departed(self, ri, kind: str, now: int,
                    status: str) -> None:
        """An admitted request left the queue (granted or not)."""


class AdmitAll(AdmissionPolicy):
    """The explicit no-op policy, for sweep tables and CLI spellings."""


class TokenBucket(AdmissionPolicy):
    """Rate-limit admissions to a fraction of nominal capacity.

    ``rate_fraction`` of the RI's nominal request rate (signing units
    divided by mix-weighted mean service demand) refills the bucket;
    ``burst`` bounds how many admissions can happen back-to-back. The
    refill is integer-exact: one token every ``ticks_per_token`` kernel
    ticks, no float accumulation.
    """

    name = "token-bucket"

    def __init__(self, rate_fraction: float = 0.9,
                 burst: int = 8) -> None:
        if rate_fraction <= 0:
            raise ValueError("the admitted rate must be positive")
        if burst < 1:
            raise ValueError("the burst must allow at least one token")
        self.rate_fraction = rate_fraction
        self.burst = burst
        self.ticks_per_token = 1
        self._tokens = burst
        self._refill_at = 0

    def bind(self, ri) -> None:
        service = ri.nominal_service_ticks()
        rate = self.rate_fraction * ri.capacity.signing_units
        self.ticks_per_token = max(1, int(round(service / rate)))
        self._tokens = self.burst
        self._refill_at = ri.kernel.now

    def admit(self, ri, kind: str, now: int) -> Optional[str]:
        periods = (now - self._refill_at) // self.ticks_per_token
        if periods > 0:
            self._tokens = min(self.burst, self._tokens + periods)
            self._refill_at += periods * self.ticks_per_token
        if self._tokens > 0:
            self._tokens -= 1
            return None
        return "token-bucket: admitted rate above %.0f%% of nominal" \
            % (100.0 * self.rate_fraction)


class CoDelShedder(AdmissionPolicy):
    """Shed when the implied queue delay stays above target too long.

    The policy tracks the signing queue's *work backlog* — service
    ticks admitted but not yet started — via the admission hooks. The
    implied delay is backlog divided by signing units; once it has
    exceeded ``target`` continuously for ``interval``, new arrivals are
    shed until the backlog drains back under target. Both thresholds
    are in service units, so the same configuration scales across
    architectures.
    """

    name = "codel"

    def __init__(self, target_services: float = 4.0,
                 interval_services: float = 8.0) -> None:
        if target_services <= 0 or interval_services <= 0:
            raise ValueError("CoDel thresholds must be positive")
        self.target_services = target_services
        self.interval_services = interval_services
        self.target_ticks = 1
        self.interval_ticks = 1
        self._backlog_ticks = 0
        self._above_since: Optional[int] = None

    def bind(self, ri) -> None:
        service = ri.nominal_service_ticks()
        self.target_ticks = max(1, int(round(self.target_services
                                             * service)))
        self.interval_ticks = max(1, int(round(self.interval_services
                                               * service)))
        self._backlog_ticks = 0
        self._above_since = None

    def _implied_delay_ticks(self, ri) -> int:
        return self._backlog_ticks // ri.capacity.signing_units

    def admit(self, ri, kind: str, now: int) -> Optional[str]:
        if self._implied_delay_ticks(ri) <= self.target_ticks:
            self._above_since = None
            return None
        if self._above_since is None:
            self._above_since = now
        if now - self._above_since < self.interval_ticks:
            return None
        return "codel: implied queue delay above target for a full " \
               "interval"

    def on_admitted(self, ri, kind: str, now: int) -> None:
        self._backlog_ticks += ri.base_ticks(kind)

    def on_departed(self, ri, kind: str, now: int,
                    status: str) -> None:
        self._backlog_ticks = max(0, self._backlog_ticks
                                  - ri.base_ticks(kind))


class PriorityAdmission(AdmissionPolicy):
    """Priority classes with per-class bounded pending queues.

    ``class_limits`` maps priority class (0, 1, 2 — see
    :data:`PRIORITY_CLASSES`) to the maximum number of requests of that
    class allowed to be pending (admitted, not yet granted) at once;
    arrivals beyond it are shed. Admitted requests queue at their class
    priority, so registrations overtake queued acquisitions.
    """

    name = "priority"

    def __init__(self, class_limits: Optional[Mapping[int, int]] = None,
                 classes: Mapping[str, int] = PRIORITY_CLASSES) -> None:
        limits = dict(class_limits if class_limits is not None
                      else {0: 16, 1: 8, 2: 8})
        if any(limit < 1 for limit in limits.values()):
            raise ValueError("every class bound must admit at least "
                             "one request")
        self.class_limits = limits
        self.classes = dict(classes)
        self._pending: Dict[int, int] = {cls: 0
                                         for cls in sorted(limits)}

    def bind(self, ri) -> None:
        self._pending = {cls: 0 for cls in sorted(self.class_limits)}

    def priority(self, kind: str) -> int:
        return self.classes.get(kind, max(self.classes.values()) + 1)

    def admit(self, ri, kind: str, now: int) -> Optional[str]:
        cls = self.priority(kind)
        limit = self.class_limits.get(cls)
        if limit is not None and self._pending.get(cls, 0) >= limit:
            return "priority: class %d pending bound %d reached" \
                % (cls, limit)
        return None

    def on_admitted(self, ri, kind: str, now: int) -> None:
        cls = self.priority(kind)
        self._pending[cls] = self._pending.get(cls, 0) + 1

    def on_departed(self, ri, kind: str, now: int,
                    status: str) -> None:
        cls = self.priority(kind)
        self._pending[cls] = max(0, self._pending.get(cls, 0) - 1)


#: CLI/sweep spellings of the admission policies, in table order.
ADMISSION_POLICIES = ("none", "token-bucket", "codel", "priority")


def make_admission(name: str) -> Optional[AdmissionPolicy]:
    """Instantiate a policy from its sweep/CLI spelling."""
    if name == "none":
        return None
    if name == "token-bucket":
        return TokenBucket()
    if name == "codel":
        return CoDelShedder()
    if name == "priority":
        return PriorityAdmission()
    raise ValueError("unknown admission policy %r (expected one of %s)"
                     % (name, ", ".join(ADMISSION_POLICIES)))
