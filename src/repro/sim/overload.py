"""The retry-storm engine: metastable overload, deterministically.

The saturation sweep (:mod:`repro.analysis.saturation`) measures the
Rights Issuer under *well-behaved* open load. Real fleets are not well
behaved: a refused or timed-out device retries, retries add load, load
causes more refusals — and past a threshold the system enters a
*metastable* regime in which goodput stays collapsed long after the
triggering spike has ended, because the server spends its whole
capacity on requests whose clients have already given up while those
same clients re-inject fresh attempts. Bronson et al. named the
pattern; this module reproduces it bit-deterministically and measures
which (admission policy × retry policy) combinations escape it.

One :func:`run_storm` drives an open-loop client population against a
Table 1-priced :class:`~repro.sim.ri.RIServer`:

* **Arrivals** are Poisson at ``baseline_rho`` of nominal capacity,
  stepped to ``spike_rho`` inside the spike window — all times are in
  *service units* (multiples of the mix-weighted mean service demand),
  so one storm specification means the same offered-load story on
  every architecture.
* **Clients** have bounded patience: an attempt whose answer has not
  arrived within ``patience`` is abandoned. Without deadline
  propagation the abandoned request *stays in the signing queue* and
  is eventually served late — pure waste, and the amplification
  mechanism that makes the regime metastable. With
  ``deadlines=True`` the request carries its deadline into
  :meth:`~repro.sim.ri.RIServer.serve_request`, expires in-queue
  (:data:`~repro.sim.kernel.TIMED_OUT`) and wastes nothing.
* **Retries** re-enter through the PR 1 backoff machinery
  (:class:`~repro.drm.session.RetryPolicy`, policy seconds read as
  service units): ``naive`` fixed-delay retries, capped
  exponential-``backoff-jitter`` (deterministic SHA-1 jitter via the
  shared :mod:`repro.core.jitter` helper), or ``retry-budget`` —
  backoff-jitter gated by a token bucket refilled only by *fresh*
  arrivals, the client-side analogue of the RI's admission control.
* **Goodput** is a served response that arrived within its client's
  patience, binned by completion time. The result quantifies the
  collapse (consecutive post-spike bins under half the pre-spike
  goodput) and the recovery (first post-spike bin back at 90%).

Everything is a pure function of the :class:`StormSpec`: named kernel
streams for arrivals and kinds, SHA-1 jitter for backoff, integer
ticks throughout — the same spec produces the same
:meth:`StormResult.digest` on every run, worker count and platform.
"""

from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Mapping, Optional, Tuple

from ..core.architecture import PAPER_PROFILES, ArchitectureProfile
# repro: allow[REP201] -- the storm digest fingerprints simulation results for determinism tests; it is bookkeeping, not protocol crypto
from ..crypto.sha1 import sha1
from ..drm.session import RetryPolicy
from ..obs.metrics import MetricsRegistry
from ..obs.slo import Objective, SLOReport
from ..obs.tracer import NULL_TRACER
from .kernel import Kernel, Wait
from .queueing import exponential_ticks
from .ri import DEFAULT_REQUEST_MIX, RICapacity, RIServer
from .admission import ADMISSION_POLICIES, make_admission

#: Architecture profiles by paper name, for spec resolution.
PROFILES_BY_NAME: Mapping[str, ArchitectureProfile] = {
    profile.name: profile for profile in PAPER_PROFILES}

#: Client retry disciplines, in sweep/table order.
RETRY_DISCIPLINES = ("naive", "backoff-jitter", "retry-budget")

#: The PR 1 retry policies behind each discipline. Policy "seconds"
#: are read as service units (multiples of the mix-weighted mean
#: service demand), which keeps one discipline meaningful on every
#: architecture. ``naive`` is the anti-pattern: a short fixed delay
#: and a deep attempt budget, the configuration that turns a spike
#: into a storm. ``retry-budget`` backs off identically to
#: ``backoff-jitter`` but is additionally gated by a
#: :class:`RetryBudget`.
RETRY_POLICIES: Mapping[str, RetryPolicy] = {
    "naive": RetryPolicy(max_attempts=16, base_backoff_seconds=5,
                         backoff_multiplier=1.0,
                         max_backoff_seconds=5, jitter_seconds=0),
    "backoff-jitter": RetryPolicy(max_attempts=8,
                                  base_backoff_seconds=2,
                                  backoff_multiplier=2.0,
                                  max_backoff_seconds=64,
                                  jitter_seconds=3),
    "retry-budget": RetryPolicy(max_attempts=8,
                                base_backoff_seconds=2,
                                backoff_multiplier=2.0,
                                max_backoff_seconds=64,
                                jitter_seconds=3),
}


class RetryBudget:
    """A client-side retry token bucket refilled by fresh arrivals.

    Every ``fresh_per_token`` first attempts add one retry token (up
    to ``burst``); each retry spends one. When the bucket is dry the
    client gives up instead of retrying — bounding the whole fleet's
    retry amplification to ``1/fresh_per_token`` of the fresh rate no
    matter how badly the server is doing.
    """

    def __init__(self, fresh_per_token: int = 5,
                 burst: int = 20) -> None:
        if fresh_per_token < 1 or burst < 1:
            raise ValueError("the retry budget must refill and hold "
                             "at least one token")
        self.fresh_per_token = fresh_per_token
        self.burst = burst
        self._tokens = burst
        self._fresh = 0
        self.granted = 0
        self.denied = 0

    def on_fresh(self) -> None:
        self._fresh += 1
        if self._fresh >= self.fresh_per_token:
            self._fresh = 0
            self._tokens = min(self.burst, self._tokens + 1)

    def take(self) -> bool:
        if self._tokens > 0:
            self._tokens -= 1
            self.granted += 1
            return True
        self.denied += 1
        return False


@dataclass(frozen=True)
class StormSpec:
    """Everything that determines one retry-storm run.

    All durations are in *service units*: multiples of the
    architecture's mix-weighted mean service demand (one unit is the
    time the RI needs to serve one average request at an empty queue).
    """

    seed: str = "repro-storm"
    architecture: str = "SW"
    #: Admission policy spelling (see :data:`~repro.sim.admission
    #: .ADMISSION_POLICIES`).
    admission: str = "none"
    #: Client retry discipline (see :data:`RETRY_DISCIPLINES`).
    retry: str = "naive"
    #: Propagate client patience as an in-queue deadline: abandoned
    #: requests expire instead of being served late.
    deadlines: bool = False
    baseline_rho: float = 0.6
    spike_rho: float = 4.0
    spike_start: int = 180
    spike_end: int = 300
    horizon: int = 960
    bin_size: int = 30
    patience: int = 12
    signing_units: int = 1
    queue_limit: Optional[int] = None

    def __post_init__(self) -> None:
        if self.architecture not in PROFILES_BY_NAME:
            raise ValueError("unknown architecture %r (expected one "
                             "of %s)" % (self.architecture,
                                         ", ".join(PROFILES_BY_NAME)))
        if self.admission not in ADMISSION_POLICIES:
            raise ValueError("unknown admission policy %r"
                             % (self.admission,))
        if self.retry not in RETRY_DISCIPLINES:
            raise ValueError("unknown retry discipline %r"
                             % (self.retry,))
        if not (0 < self.spike_start < self.spike_end
                <= self.horizon):
            raise ValueError("the spike window must sit inside the "
                             "horizon")
        if self.baseline_rho <= 0 or self.spike_rho <= 0:
            raise ValueError("offered loads must be positive")
        if self.bin_size < 1 or self.patience < 1:
            raise ValueError("bins and patience must be at least one "
                             "service unit")
        if self.horizon % self.bin_size:
            raise ValueError("the horizon must be a whole number of "
                             "bins")

    @property
    def spike_duration(self) -> int:
        """Spike length in service units."""
        return self.spike_end - self.spike_start

    def objectives(self) -> Tuple[Objective, ...]:
        """The SLOs a storm run is scored against.

        One latency objective — answered within the clients' patience,
        the storm's own definition of a good response — and one pure
        goodput objective. Windows are sized in bins so burn-rate
        alerts resolve at the same granularity as the goodput series.
        """
        return (
            Objective(name="answered-in-patience", kind="*",
                      threshold_units=float(self.patience),
                      target=0.95, fast_window_units=self.bin_size,
                      slow_window_units=4 * self.bin_size),
            Objective(name="storm-goodput", kind="*",
                      threshold_units=None, target=0.99,
                      fast_window_units=self.bin_size,
                      slow_window_units=4 * self.bin_size),
        )

    @property
    def label(self) -> str:
        """The (admission × retry) combination as a table key."""
        suffix = "+deadline" if self.deadlines else ""
        return "%s/%s%s" % (self.admission, self.retry, suffix)


@dataclass(frozen=True)
class BinStat:
    """One goodput bin: what arrived and what resolved inside it."""

    index: int
    offered: int = 0
    good: int = 0
    served: int = 0
    late: int = 0
    shed: int = 0
    refused: int = 0
    timed_out: int = 0


class _StormState:
    """Mutable accumulators shared by the storm's processes."""

    def __init__(self, spec: StormSpec, bins: int) -> None:
        self.spec = spec
        self.clients = 0
        self.attempts = 0
        self.successes = 0
        self.gave_up = 0
        self.abandoned = 0
        self.late_served = 0
        self.wasted_service_ticks = 0
        self.resolved = 0
        self.offered_by_bin = [0] * bins
        self.good_by_bin = [0] * bins
        self.served_by_bin = [0] * bins
        self.late_by_bin = [0] * bins
        self.shed_by_bin = [0] * bins
        self.refused_by_bin = [0] * bins
        self.timed_out_by_bin = [0] * bins


@dataclass
class StormResult:
    """What one storm run measured; see the module docstring."""

    spec: StormSpec
    slot_ticks: int
    clients: int
    attempts: int
    successes: int
    gave_up: int
    abandoned: int
    served: int
    refused: int
    shed: int
    timed_out: int
    late_served: int
    pending: int
    retries_denied: int
    service_ticks_total: int
    wasted_service_ticks: int
    utilization: float
    events: int
    pre_goodput_per_bin: float
    collapse_bins: int
    recovery_bin: Optional[int]
    bins: Tuple[BinStat, ...] = field(default_factory=tuple)
    #: SLO evaluation of the run (burn-rate alerts + exemplars); same
    #: seed, same alert ticks — the determinism tests pin this.
    slo: Optional[SLOReport] = None

    @property
    def collapse_duration(self) -> int:
        """Post-spike service units goodput stayed below half pre."""
        return self.collapse_bins * self.spec.bin_size

    @property
    def recovery_time(self) -> Optional[int]:
        """Service units from spike end until a ≥90%-of-pre bin."""
        if self.recovery_bin is None:
            return None
        return (self.recovery_bin * self.spec.bin_size
                - self.spec.spike_end)

    def recovered_within(self, window: int) -> bool:
        """Whether goodput was back at ≥90% inside ``window`` units."""
        return (self.recovery_time is not None
                and self.recovery_time <= window)

    @property
    def goodput_ratio(self) -> float:
        """Good responses per fresh client (1.0 = every client fed)."""
        if not self.clients:
            return 0.0
        return self.successes / self.clients

    @property
    def shed_rate(self) -> float:
        """Shed share of all resolved requests."""
        resolved = (self.served + self.refused + self.shed
                    + self.timed_out)
        if not resolved:
            return 0.0
        return self.shed / resolved

    @property
    def wasted_share(self) -> float:
        """Service ticks spent on already-abandoned requests."""
        if not self.service_ticks_total:
            return 0.0
        return self.wasted_service_ticks / self.service_ticks_total

    def digest(self) -> str:
        """A stable fingerprint of every counter and bin.

        Two runs of the same spec must produce the same digest on any
        platform, worker count or run order — the determinism contract
        the overload tests and the ``--jobs`` invariance gate hold.
        """
        blob = repr((self.spec, self.slot_ticks, self.clients,
                     self.attempts, self.successes, self.gave_up,
                     self.abandoned, self.served, self.refused,
                     self.shed, self.timed_out, self.late_served,
                     self.pending, self.retries_denied,
                     self.service_ticks_total,
                     self.wasted_service_ticks, self.events,
                     self.collapse_bins, self.recovery_bin,
                     self.bins)).encode("utf-8")
        return sha1(blob).hex()


class _Request:
    """One in-flight attempt: the cell its processes share."""

    __slots__ = ("kind", "deadline", "outcome")

    def __init__(self, kind: str, deadline: int) -> None:
        self.kind = kind
        self.deadline = deadline
        self.outcome = None


def run_storm(spec: StormSpec, tracer=NULL_TRACER,
              metrics: Optional[MetricsRegistry] = None) -> StormResult:
    """Run one retry storm to its horizon and measure it.

    A pure function of ``spec``: see the module docstring for the
    determinism contract. The kernel runs ``until`` the horizon and is
    *not* drained — a collapsed queue never drains, which is the
    point.
    """
    profile = PROFILES_BY_NAME[spec.architecture]
    capacity = RICapacity(signing_units=spec.signing_units,
                          queue_limit=spec.queue_limit)
    kernel = Kernel(seed="%s/storm" % spec.seed, record_log=False)
    ri = RIServer(kernel, profile, capacity=capacity,
                  admission=make_admission(spec.admission),
                  tracer=tracer)
    slot_ticks = max(1, int(round(ri.nominal_service_ticks())))
    slo = ri.attach_slo(spec.objectives())
    policy = RETRY_POLICIES[spec.retry]
    budget = RetryBudget() if spec.retry == "retry-budget" else None
    registry = metrics if metrics is not None else MetricsRegistry()

    horizon_ticks = spec.horizon * slot_ticks
    spike_start_ticks = spec.spike_start * slot_ticks
    spike_end_ticks = spec.spike_end * slot_ticks
    patience_ticks = spec.patience * slot_ticks
    bins = spec.horizon // spec.bin_size
    bin_ticks = spec.bin_size * slot_ticks
    state = _StormState(spec, bins)

    def bin_of(tick: int) -> int:
        return min(bins - 1, tick // bin_ticks)

    def record(request: _Request, outcome) -> None:
        state.resolved += 1
        index = bin_of(outcome.finished)
        if outcome.status == "served":
            state.served_by_bin[index] += 1
            if outcome.finished <= request.deadline:
                state.good_by_bin[index] += 1
            else:
                state.late_by_bin[index] += 1
                state.late_served += 1
                state.wasted_service_ticks += outcome.service_ticks
        elif outcome.status == "shed":
            state.shed_by_bin[index] += 1
        elif outcome.status == "refused":
            state.refused_by_bin[index] += 1
        else:
            state.timed_out_by_bin[index] += 1

    def request_process(request: _Request
                        ) -> Generator[Any, Any, None]:
        if spec.deadlines:
            outcome = yield from ri.serve_request(
                request.kind, deadline=request.deadline)
        else:
            outcome = yield from ri.serve_request(request.kind)
        request.outcome = outcome
        record(request, outcome)
        return None

    def client_process(index: int,
                       kind: str) -> Generator[Any, Any, None]:
        name = "client/%d" % index
        attempts = 0
        while True:
            attempts += 1
            state.attempts += 1
            attempt_start = kernel.now
            request = _Request(kind, attempt_start + patience_ticks)
            kernel.spawn("request/%d/%d" % (index, attempts),
                         request_process(request))
            # One tick to observe a synchronous refusal (shed/refused
            # resolve at the arrival tick); slow answers get the rest
            # of the client's patience.
            yield Wait(1)
            if request.outcome is None:
                yield Wait(patience_ticks - 1)
            outcome = request.outcome
            if outcome is not None and outcome.status == "served" \
                    and outcome.finished <= request.deadline:
                state.successes += 1
                registry.counter("storm.success")
                registry.histogram("storm.attempts_to_success",
                                   attempts)
                return None
            if outcome is None:
                # Patience ran out with the request still queued (or
                # in service): the client walks away, the request
                # stays — the waste that feeds the metastable regime.
                state.abandoned += 1
                registry.counter("storm.abandoned")
            if attempts >= policy.max_attempts:
                state.gave_up += 1
                registry.counter("storm.gave_up")
                return None
            if budget is not None and not budget.take():
                state.gave_up += 1
                registry.counter("storm.gave_up")
                registry.counter("storm.retry_denied")
                return None
            delay_units = policy.backoff_seconds(attempts, salt=name)
            yield Wait(delay_units * slot_ticks)

    names = tuple(DEFAULT_REQUEST_MIX)
    weights = tuple(DEFAULT_REQUEST_MIX[name] for name in names)
    gaps = kernel.stream("arrivals")
    kinds = kernel.stream("kinds")

    def source() -> Generator[Any, Any, None]:
        index = 0
        while True:
            now = kernel.now
            rho = spec.spike_rho \
                if spike_start_ticks <= now < spike_end_ticks \
                else spec.baseline_rho
            mean_gap = slot_ticks / (rho * spec.signing_units)
            yield Wait(exponential_ticks(gaps, mean_gap))
            if kernel.now >= horizon_ticks:
                return None
            kind = kinds.choices(names, weights=weights)[0]
            state.clients += 1
            state.offered_by_bin[bin_of(kernel.now)] += 1
            registry.counter("storm.clients")
            if budget is not None:
                budget.on_fresh()
            kernel.spawn("client/%d" % index,
                         client_process(index, kind))
            index += 1

    kernel.spawn("source", source())
    kernel.run(until=horizon_ticks)
    kernel.close()

    bin_stats = tuple(
        BinStat(index=index,
                offered=state.offered_by_bin[index],
                good=state.good_by_bin[index],
                served=state.served_by_bin[index],
                late=state.late_by_bin[index],
                shed=state.shed_by_bin[index],
                refused=state.refused_by_bin[index],
                timed_out=state.timed_out_by_bin[index])
        for index in range(bins))

    # Pre-spike goodput baseline: full bins strictly before the spike,
    # skipping the first (cold-start) bin.
    pre_end = spec.spike_start // spec.bin_size
    pre_bins = [stat.good for stat in bin_stats[1:pre_end]]
    pre_goodput = (sum(pre_bins) / len(pre_bins)) if pre_bins else 0.0

    # Collapse: consecutive post-spike bins under half the pre-spike
    # goodput; recovery: the first post-spike bin back at 90%.
    post_start = spec.spike_end // spec.bin_size
    collapse_bins = 0
    for stat in bin_stats[post_start:]:
        if stat.good < 0.5 * pre_goodput:
            collapse_bins += 1
        else:
            break
    recovery_bin: Optional[int] = None
    if pre_goodput > 0:
        # A zero pre-spike baseline means the system never had healthy
        # goodput to recover to (on HW the OCSP round-trip alone can
        # outlive client patience); recovery is undefined, not instant.
        for stat in bin_stats[post_start:]:
            if stat.good >= 0.9 * pre_goodput:
                recovery_bin = stat.index
                break

    return StormResult(
        spec=spec, slot_ticks=slot_ticks,
        clients=state.clients, attempts=state.attempts,
        successes=state.successes, gave_up=state.gave_up,
        abandoned=state.abandoned,
        served=ri.served, refused=ri.refused, shed=ri.shed,
        timed_out=ri.timed_out, late_served=state.late_served,
        pending=state.attempts - state.resolved,
        retries_denied=budget.denied if budget is not None else 0,
        service_ticks_total=ri.service_ticks_total,
        wasted_service_ticks=state.wasted_service_ticks,
        utilization=ri.utilization(),
        events=kernel.events_executed,
        pre_goodput_per_bin=pre_goodput,
        collapse_bins=collapse_bins,
        recovery_bin=recovery_bin,
        bins=bin_stats,
        slo=slo.report())
