"""Fleet scenarios on the kernel: shared-RI contention, open load.

:mod:`repro.usecases.fleet` prices devices as if each had the Rights
Issuer to itself; this module drives the *same* deterministic population
through one :class:`~repro.sim.ri.RIServer` per architecture, so queue
waits, saturation and refused requests become measurable. Two entry
points:

* :func:`run_fleet_kernel` — the fleet CLI's ``--kernel`` mode. The
  sequential engine runs first (sharded, bit-identical for any worker
  count) and its accumulator is carried unchanged; the kernel pass then
  replays each device's drawn request schedule (arrival bin, retry
  counts) against a shared RI per architecture. Device draws come from
  :func:`~repro.usecases.fleet.draw_device` verbatim, so the kernel
  pass *conserves requests*: served + refused equals the accumulator's
  request count exactly (``tests/sim/test_equivalence.py``).
* :func:`run_open_load` — an open Poisson request source at a chosen
  arrival rate, the generator behind the saturation analysis
  (:mod:`repro.analysis.saturation`): utilization, queue depth and
  latency as functions of offered load.

Determinism: both entry points are pure functions of their arguments.
Every draw comes from a named kernel stream in a schedule-independent
order (arrival offsets in device-index order, open-load draws at
arrival), and all statistics are integer-exact, so results are
bit-identical per seed — for any worker count, since the kernel pass is
worker-independent and the sequential engine already holds that
contract.
"""

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from ..core.architecture import PAPER_PROFILES, ArchitectureProfile
from ..core.stats import StatsSummary
from ..obs.slo import SLOReport
from ..obs.tracer import NULL_TRACER
from ..usecases.fleet import (CostTemplates, DeviceDraw, FleetConfig,
                              FleetResult, build_cost_templates,
                              draw_device, run_fleet)
from .kernel import Kernel, Wait
from .queueing import exponential_ticks
# DEFAULT_REQUEST_MIX and nominal_service_ticks moved to repro.sim.ri
# (the admission policies size their budgets from them); re-exported
# here because the saturation analysis and external callers import
# them from the fleet module.
from .ri import (DEFAULT_REQUEST_MIX, RICapacity, RIServer,
                 nominal_service_ticks)

__all__ = [
    "DEFAULT_REQUEST_MIX", "ArchitectureLoadResult",
    "KernelFleetResult", "OpenLoadResult", "nominal_service_ticks",
    "run_fleet_kernel", "run_open_load",
]


def _device_requests(draw: DeviceDraw) -> Tuple[str, ...]:
    """The RI requests one drawn device issues, in protocol order.

    Mirrors the sequential engine's accounting exactly: every
    registration attempt is a DeviceHello plus a RegistrationRequest
    (``REGISTRATION_REQUESTS == 2``), every acquisition attempt one
    RORequest (``ACQUISITION_REQUESTS == 1``), acquisitions only after
    a completed registration.
    """
    requests = ("hello", "registration") * draw.registration_attempts
    if draw.registered:
        requests += ("acquisition",) * draw.acquisition_attempts
    return requests


@dataclass
class ArchitectureLoadResult:
    """What one shared RI observed serving one architecture's fleet."""

    architecture: str
    ticks_per_second: int
    served: int
    refused: int
    span_ticks: int
    events: int
    utilization: float
    mean_queue_depth: float
    peak_queue_depth: int
    ocsp_fetches: int
    latency: StatsSummary
    wait: StatsSummary
    latency_by_kind: Dict[str, StatsSummary] = field(default_factory=dict)
    #: SLO evaluation of the run (deterministic alerts + exemplars);
    #: ``None`` when the server ran without a monitor.
    slo: Optional[SLOReport] = None

    def latency_ms(self, which: str = "mean") -> float:
        """A latency summary statistic in milliseconds."""
        value = getattr(self.latency, which) or 0
        return value * 1000.0 / self.ticks_per_second

    def arrival_rate_per_second(self) -> float:
        """Realized request arrivals per second of RI time."""
        if not self.span_ticks:
            return 0.0
        return ((self.served + self.refused) * self.ticks_per_second
                / self.span_ticks)


def _load_result(ri: RIServer, kernel: Kernel,
                 name: str) -> ArchitectureLoadResult:
    return ArchitectureLoadResult(
        architecture=name,
        ticks_per_second=ri.ticks_per_second,
        served=ri.served, refused=ri.refused,
        span_ticks=kernel.now, events=kernel.events_executed,
        utilization=ri.utilization(),
        mean_queue_depth=ri.mean_queue_depth(),
        peak_queue_depth=ri.signing.queue_depth.maximum,
        ocsp_fetches=ri.ocsp_fetches,
        latency=ri.latency.summary(),
        wait=ri.signing.wait_ticks.summary(),
        latency_by_kind={kind: stats.summary()
                         for kind, stats in ri.latency_by_kind.items()
                         if stats.count},
        slo=ri.slo.report() if ri.slo is not None else None,
    )


@dataclass
class KernelFleetResult:
    """A fleet run with the kernel's contention view attached.

    ``base`` is the unchanged sequential result — same accumulator,
    templates and metrics as a plain :func:`~repro.usecases.fleet
    .run_fleet` of the same config and worker count. ``architectures``
    adds what the per-architecture shared RI observed.
    """

    base: FleetResult
    capacity: RICapacity
    architectures: Dict[str, ArchitectureLoadResult]

    @property
    def config(self) -> FleetConfig:
        """The fleet configuration both passes ran from."""
        return self.base.config


def run_fleet_kernel(config: FleetConfig, workers: int = 1,
                     templates: Optional[CostTemplates] = None,
                     capacity: RICapacity = RICapacity(),
                     profiles: Tuple[ArchitectureProfile, ...] =
                     PAPER_PROFILES,
                     tracer=NULL_TRACER) -> KernelFleetResult:
    """Run the fleet sequentially, then replay it on shared RIs.

    The kernel pass schedules each device at its drawn arrival bin (a
    uniform within-bin offset comes from the kernel's ``arrivals``
    stream, drawn in device-index order) and replays its request
    schedule against one shared :class:`RIServer` per architecture
    profile. Request conservation against the sequential accumulator is
    exact; see the module docstring.
    """
    if templates is None:
        # repro: allow[REP202] -- world construction seeds per-device DRBG streams; provisioning entropy is outside Table 1's priced protocol trace
        templates = build_cost_templates(config)
    # repro: allow[REP202] -- same provisioning path: the sequential fleet pass builds its world through the PR 2 engine
    base = run_fleet(config, workers=workers, templates=templates)
    draws = [draw_device(config, index)
             for index in range(config.devices)]

    architectures: Dict[str, ArchitectureLoadResult] = {}
    for profile in profiles:
        kernel = Kernel(seed="%s/kernel/%s" % (config.seed,
                                               profile.name),
                        record_log=False)
        ri = RIServer(kernel, profile, capacity=capacity,
                      tracer=tracer)
        ri.attach_slo()
        bin_ticks = max(1, config.window_seconds * profile.clock_hz
                        // config.arrival_bins)
        offsets = kernel.stream("arrivals")

        def device(draw: DeviceDraw):
            for kind in _device_requests(draw):
                yield from ri.serve(kind)
            return None

        for draw in draws:
            arrival = (draw.arrival_bin * bin_ticks
                       + offsets.randrange(bin_ticks))
            kernel.spawn("device/%d" % draw.index, device(draw),
                         at=arrival)
        kernel.run()
        architectures[profile.name] = _load_result(ri, kernel,
                                                   profile.name)
    return KernelFleetResult(base=base, capacity=capacity,
                             architectures=architectures)


# -- open load -------------------------------------------------------------

@dataclass
class OpenLoadResult:
    """One open-load measurement point for one architecture."""

    architecture: str
    offered_per_second: float
    requests: int
    load: ArchitectureLoadResult


def run_open_load(seed: str, profile: ArchitectureProfile,
                  arrivals_per_second: float, requests: int,
                  mix: Mapping[str, float] = DEFAULT_REQUEST_MIX,
                  capacity: RICapacity = RICapacity(),
                  tracer=NULL_TRACER) -> OpenLoadResult:
    """Drive one RI with Poisson request arrivals at a fixed rate.

    Inter-arrival gaps are exponential with mean ``clock_hz / rate``
    ticks; each arrival's kind is drawn from ``mix`` at arrival time
    (schedule-independent draws from the ``kinds`` stream). The run is
    measured to drain.
    """
    if arrivals_per_second <= 0:
        raise ValueError("the arrival rate must be positive")
    if requests < 1:
        raise ValueError("at least one request is required")
    kernel = Kernel(seed=seed, record_log=False)
    ri = RIServer(kernel, profile, capacity=capacity, tracer=tracer)
    ri.attach_slo()
    mean_gap = profile.clock_hz / arrivals_per_second
    gaps = kernel.stream("arrivals")
    kinds_rng = kernel.stream("kinds")
    names = tuple(mix)
    weights = tuple(mix[name] for name in names)

    def request(kind: str):
        yield from ri.serve(kind)
        return None

    def source():
        for index in range(requests):
            yield Wait(exponential_ticks(gaps, mean_gap))
            kind = kinds_rng.choices(names, weights=weights)[0]
            kernel.spawn("request/%d" % index, request(kind))
        return None

    kernel.spawn("source", source())
    kernel.run()
    return OpenLoadResult(
        architecture=profile.name,
        offered_per_second=arrivals_per_second, requests=requests,
        load=_load_result(ri, kernel, profile.name))
