"""Perf-trajectory aggregation: merge bench artifacts, gate drift.

The bench scripts under ``benchmarks/`` each emit one
``BENCH_<name>.json`` in the shared ``bench-report`` schema
(``benchmarks/harness.py``): metrics stamped with a direction and an
optional tolerance band, plus the script's own gate verdicts. This
module folds those into one ``BENCH_trajectory.json`` — the repo's
performance trajectory across PRs — and detects regressions against
it:

* :func:`merge` combines fresh reports into a :class:`Trajectory`,
  assigning each metric a *reference* value: the matching metric from
  the previous (committed) trajectory when one exists, else the fresh
  value itself. A first-seen metric therefore never regresses; a
  metric that disappears from a bench simply drops out.
* :func:`Trajectory.regressions` applies the direction-aware tolerance
  band to every gated metric (``tolerance_pct`` not ``None``): a
  "higher"-is-better metric regresses when it falls more than the band
  below its reference, a "lower"-is-better one when it rises more than
  the band above. Informational metrics (wall-clock) are carried but
  never gated. Failed in-script verdicts always fail validation.

The committed ``BENCH_trajectory.json`` is self-contained — its
references are the values it was merged against — so
``python -m repro perfdiff BENCH_trajectory.json`` validates it on any
machine and exits zero. CI regenerates the bench artifacts, merges
them with ``--previous`` pointing at the committed trajectory, and
fails the build when a gated metric drifted.
"""

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: Artifact schema version shared with ``benchmarks/harness.py``.
SCHEMA = 1

REPORT_KIND = "bench-report"
TRAJECTORY_KIND = "bench-trajectory"

DIRECTIONS = ("higher", "lower")


class TrajectoryError(ValueError):
    """A bench artifact failed schema validation."""


@dataclass(frozen=True)
class MetricPoint:
    """One metric inside a trajectory: value, policy and reference."""

    bench: str
    name: str
    value: float
    unit: str
    direction: str
    tolerance_pct: Optional[float]
    reference: float

    @property
    def gated(self) -> bool:
        """Whether this metric participates in regression detection."""
        return self.tolerance_pct is not None

    @property
    def allowed(self) -> float:
        """The worst acceptable value given reference and band."""
        band = abs(self.reference) * (self.tolerance_pct or 0.0) / 100.0
        if self.direction == "higher":
            return self.reference - band
        return self.reference + band

    @property
    def regressed(self) -> bool:
        """Direction-aware drift outside the tolerance band."""
        if not self.gated:
            return False
        if self.direction == "higher":
            return self.value < self.allowed
        return self.value > self.allowed

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "value": self.value,
            "unit": self.unit,
            "direction": self.direction,
            "tolerance_pct": self.tolerance_pct,
            "reference": self.reference,
        }


@dataclass(frozen=True)
class BenchEntry:
    """One bench's slice of the trajectory."""

    bench: str
    seed: str
    rev: str
    metrics: Tuple[MetricPoint, ...]
    verdicts: Dict[str, bool]

    def to_dict(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "git_rev": self.rev,
            "metrics": [metric.to_dict() for metric in self.metrics],
            "verdicts": dict(sorted(self.verdicts.items())),
        }


@dataclass
class Trajectory:
    """The merged performance trajectory across all bench scripts."""

    entries: Dict[str, BenchEntry] = field(default_factory=dict)

    def metric(self, bench: str, name: str) -> Optional[MetricPoint]:
        entry = self.entries.get(bench)
        if entry is None:
            return None
        for point in entry.metrics:
            if point.name == name:
                return point
        return None

    def regressions(self) -> List[MetricPoint]:
        """Every gated metric outside its tolerance band."""
        found = []
        for bench in sorted(self.entries):
            for point in self.entries[bench].metrics:
                if point.regressed:
                    found.append(point)
        return found

    def failed_verdicts(self) -> List[Tuple[str, str]]:
        """``(bench, verdict)`` for every in-script gate that failed."""
        failures = []
        for bench in sorted(self.entries):
            for name, passed in sorted(
                    self.entries[bench].verdicts.items()):
                if not passed:
                    failures.append((bench, name))
        return failures

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": SCHEMA,
            "kind": TRAJECTORY_KIND,
            "benches": {bench: entry.to_dict()
                        for bench, entry in
                        sorted(self.entries.items())},
        }

    def write(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    def render(self) -> str:
        """The trajectory table plus regression/verdict findings."""
        lines = ["%-14s %-34s %14s %14s %9s %-6s" % (
            "bench", "metric", "value", "reference", "band", "state")]
        for bench in sorted(self.entries):
            for point in self.entries[bench].metrics:
                if not point.gated:
                    state, band = "info", "-"
                else:
                    state = "REGRESSED" if point.regressed else "ok"
                    band = "%.1f%%" % point.tolerance_pct
                lines.append("%-14s %-34s %14.6g %14.6g %9s %-6s" % (
                    bench, point.name, point.value, point.reference,
                    band, state))
        for bench, verdict in self.failed_verdicts():
            lines.append("FAIL: %s verdict %r did not hold"
                         % (bench, verdict))
        return "\n".join(lines)


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise TrajectoryError(message)


def _validated_metric(bench: str, raw: Dict[str, object],
                      reference: Optional[float]) -> MetricPoint:
    _require(isinstance(raw, dict), "%s: metric must be an object"
             % bench)
    for field_name in ("name", "value", "unit", "direction"):
        _require(field_name in raw,
                 "%s: metric missing %r" % (bench, field_name))
    _require(raw["direction"] in DIRECTIONS,
             "%s/%s: direction must be one of %r"
             % (bench, raw["name"], DIRECTIONS))
    tolerance = raw.get("tolerance_pct")
    _require(tolerance is None
             or (isinstance(tolerance, (int, float))
                 and tolerance >= 0),
             "%s/%s: tolerance_pct must be null or >= 0"
             % (bench, raw["name"]))
    value = float(raw["value"])
    return MetricPoint(
        bench=bench, name=str(raw["name"]), value=value,
        unit=str(raw["unit"]), direction=str(raw["direction"]),
        tolerance_pct=None if tolerance is None else float(tolerance),
        reference=value if reference is None else reference)


def load_report(path: str) -> Dict[str, object]:
    """Read and schema-validate one ``bench-report`` artifact."""
    with open(path, "r", encoding="utf-8") as handle:
        raw = json.load(handle)
    _require(isinstance(raw, dict), "%s: not a JSON object" % path)
    _require(raw.get("schema") == SCHEMA,
             "%s: unsupported schema %r (expected %d)"
             % (path, raw.get("schema"), SCHEMA))
    _require(raw.get("kind") == REPORT_KIND,
             "%s: kind %r is not %r"
             % (path, raw.get("kind"), REPORT_KIND))
    for field_name in ("bench", "seed", "metrics", "verdicts"):
        _require(field_name in raw,
                 "%s: missing %r" % (path, field_name))
    return raw


def merge(reports: List[Dict[str, object]],
          previous: Optional[Trajectory] = None) -> Trajectory:
    """Fold fresh bench reports into a trajectory.

    References come from ``previous`` (the committed trajectory) when
    the same bench/metric exists there; first-seen metrics reference
    themselves, so adding a bench never fails the gate retroactively.
    """
    trajectory = Trajectory()
    for raw in reports:
        bench = str(raw["bench"])
        _require(bench not in trajectory.entries,
                 "duplicate bench %r in merge input" % bench)
        metrics = []
        for metric_raw in raw["metrics"]:
            name = str(metric_raw.get("name"))
            prior = (previous.metric(bench, name)
                     if previous is not None else None)
            metrics.append(_validated_metric(
                bench, metric_raw,
                None if prior is None else prior.value))
        verdicts = {str(name): bool(passed)
                    for name, passed in dict(raw["verdicts"]).items()}
        trajectory.entries[bench] = BenchEntry(
            bench=bench, seed=str(raw["seed"]),
            rev=str(raw.get("git_rev", "unknown")),
            metrics=tuple(metrics), verdicts=verdicts)
    return trajectory


def load_trajectory(path: str) -> Trajectory:
    """Read and schema-validate a ``bench-trajectory`` artifact."""
    with open(path, "r", encoding="utf-8") as handle:
        raw = json.load(handle)
    _require(isinstance(raw, dict), "%s: not a JSON object" % path)
    _require(raw.get("schema") == SCHEMA,
             "%s: unsupported schema %r (expected %d)"
             % (path, raw.get("schema"), SCHEMA))
    _require(raw.get("kind") == TRAJECTORY_KIND,
             "%s: kind %r is not %r"
             % (path, raw.get("kind"), TRAJECTORY_KIND))
    _require(isinstance(raw.get("benches"), dict),
             "%s: missing benches object" % path)
    trajectory = Trajectory()
    for bench, entry in raw["benches"].items():
        _require(isinstance(entry, dict),
                 "%s: bench %r must be an object" % (path, bench))
        metrics = []
        for metric_raw in entry.get("metrics", ()):
            reference = metric_raw.get("reference")
            _require(isinstance(reference, (int, float)),
                     "%s/%s: metric missing numeric reference"
                     % (bench, metric_raw.get("name")))
            metrics.append(_validated_metric(bench, metric_raw,
                                             float(reference)))
        verdicts = {str(name): bool(passed)
                    for name, passed in
                    dict(entry.get("verdicts", {})).items()}
        trajectory.entries[bench] = BenchEntry(
            bench=bench, seed=str(entry.get("seed", "")),
            rev=str(entry.get("git_rev", "unknown")),
            metrics=tuple(metrics), verdicts=verdicts)
    return trajectory


def validate(trajectory: Trajectory) -> Tuple[bool, str]:
    """``(ok, rendered findings)`` — the perfdiff gate in one call."""
    regressions = trajectory.regressions()
    verdicts = trajectory.failed_verdicts()
    text = trajectory.render()
    summary = ("perf trajectory: %d bench(es), %d regression(s), "
               "%d failed verdict(s)"
               % (len(trajectory.entries), len(regressions),
                  len(verdicts)))
    return not regressions and not verdicts, text + "\n" + summary
