"""Performance-trajectory tooling: merge bench artifacts, gate drift.

See :mod:`repro.perf.trajectory` for the aggregator behind
``python -m repro perfdiff`` and the CI ``perf-trajectory`` job.
"""

from .trajectory import (BenchEntry, MetricPoint, Trajectory,
                         TrajectoryError, load_report, load_trajectory,
                         merge, validate)

__all__ = [
    "BenchEntry", "MetricPoint", "Trajectory", "TrajectoryError",
    "load_report", "load_trajectory", "merge", "validate",
]
