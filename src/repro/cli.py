"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``table1`` / ``figure5`` / ``figure6`` / ``figure7`` / ``claims`` —
  regenerate one paper artifact.
* ``all`` — regenerate everything (the quickstart).
* ``run`` — price a (possibly custom) use case under one architecture,
  with optional JSON export of the trace/breakdown.
* ``pareto`` — print the gate/time Pareto frontier for a workload.
* ``battery`` — battery-life impact of a workload per architecture.
* ``concurrency`` — CPU-busy vs wall-clock under macro offload.
* ``resilience`` — expected retry overhead on a lossy bearer.
* ``durability`` — write-ahead journal overhead and recovery cost.
* ``adversary`` — active-attacker sweep (zero-acceptance invariant),
  circuit-breaker forgery drain and outage degradation.
* ``fleet`` — simulate a large device population against one RI
  (``--kernel`` replays it on the event kernel's shared RI).
* ``saturation`` — RI utilization/latency vs offered load per
  architecture on the event kernel.
* ``overload`` — retry-storm metastability: goodput collapse and
  recovery across (admission policy × retry discipline × deadline
  propagation) under a load spike.
* ``trace`` — run a named scenario with the cycle-timebase tracer and
  export Chrome trace-event JSON plus a metrics registry.
* ``profile`` — fold a traced scenario into an exact virtual-cycle
  call tree (reconciled against the cost model), export
  collapsed-stack / speedscope profiles, and diff two profiles.
* ``perfdiff`` — validate or merge ``BENCH_*.json`` artifacts into the
  performance trajectory and fail on tolerance-band regressions.
* ``report`` — write the full paper-vs-measured Markdown report.
* ``selftest`` — run the cryptographic known-answer self-tests.
* ``lint`` — run the AST-based invariant analyzer (``repro.lint``).

Every analysis subcommand accepts ``--json`` for machine-readable
output; ``run``/``resilience``/``durability``/``fleet`` accept
``--trace PATH`` to additionally export a Chrome trace of the
command's representative scenario on the virtual cycle timeline.
"""

import argparse
import json
import sys
from dataclasses import fields, is_dataclass
from enum import Enum
from typing import Any, Callable, Dict, List, Optional, Tuple

from .analysis import (adversary, claims, durability, figure5, figure6,
                       figure7, fleet, overload, report, resilience,
                       saturation, table1)
from .analysis.common import DEFAULT_SEED
from .analysis.formatting import format_ms, format_table
from .core.architecture import PAPER_PROFILES
from .core.battery import Battery, battery_impact
from .core.concurrency import analyze as analyze_concurrency
from .crypto.selftest import run_self_tests
from .lint import cli as lint_cli
from .core.design_space import (MacroCosts, enumerate_design_points,
                                pareto_frontier)
from .core.model import PerformanceModel
from .core.serialization import (breakdown_to_dict, dump_breakdown,
                                 dump_trace)
from .obs.export import write_chrome, write_metrics
from .obs.profile import ProfileTree
from .obs.profile import diff as profile_diff
from .obs.tracer import Tracer
from .perf import trajectory as perf_trajectory
from .usecases.catalog import music_player, ringtone
from .usecases.scenario import UseCase
from .usecases.tracing import (PROFILE_SCENARIOS, SCENARIOS,
                               run_profile_scenario, run_scenario)
from .usecases.workload import run_modeled

_ARTIFACTS = {
    "table1": table1.generate,
    "figure5": figure5.generate,
    "figure6": figure6.generate,
    "figure7": figure7.generate,
    "claims": claims.generate,
}

_PROFILES = {profile.name: profile for profile in PAPER_PROFILES}

#: ``(text, payload)`` produced by each subcommand builder: the rendered
#: text artifact and its machine-readable counterpart for ``--json``.
CommandOutput = Tuple[str, Any]


# -- shared output helpers -------------------------------------------------

def _json_key(key: Any) -> str:
    """JSON object keys must be strings; enums export their value."""
    if isinstance(key, Enum):
        return str(key.value)
    if isinstance(key, str):
        return key
    return str(key)


def _jsonable(value: Any) -> Any:
    """Recursively convert an analysis result to JSON-ready data.

    Prefers an object's own ``to_dict``; otherwise walks dataclasses,
    mappings and sequences, exporting enums by value. Scalars pass
    through untouched.
    """
    to_dict = getattr(value, "to_dict", None)
    if callable(to_dict):
        return to_dict()
    if is_dataclass(value) and not isinstance(value, type):
        return {f.name: _jsonable(getattr(value, f.name))
                for f in fields(value)}
    if isinstance(value, Enum):
        return value.value
    if isinstance(value, dict):
        return {_json_key(key): _jsonable(item)
                for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, (set, frozenset)):
        return [_jsonable(item) for item in sorted(value)]
    return value


def _analysis_command(args: argparse.Namespace,
                      build: Callable[[argparse.Namespace],
                                      CommandOutput]) -> int:
    """The one shared driver behind every analysis subcommand.

    Calls ``build``, prints its text rendering (or the JSON payload
    under ``--json``), and maps ``ValueError`` — the library's usage
    error convention — to exit code 2 with a message on stderr.
    """
    try:
        text, payload = build(args)
    except ValueError as error:
        print("error: %s" % error, file=sys.stderr)
        return 2
    if getattr(args, "json", False):
        print(json.dumps(_jsonable(payload), indent=2, sort_keys=True))
    else:
        print(text)
    return 0


def _export_scenario_trace(args: argparse.Namespace, scenario: str,
                           seed: str, rsa_bits: int = 1024) -> List[str]:
    """Trace ``scenario`` fresh and write Chrome JSON to ``args.trace``.

    Returns the status lines to append to the command's text output
    (empty when ``--trace`` was not given). The traced world is built
    from scratch so the analysis layer's memoized runs never observe a
    tracer.
    """
    if not getattr(args, "trace", None):
        return []
    tracer = Tracer(profile=_PROFILES[getattr(args, "arch", "SW")],
                    actor="terminal")
    run_scenario(scenario, tracer, seed=seed, rsa_bits=rsa_bits)
    write_chrome(tracer, args.trace)
    return ["cycle trace (%s scenario, %d spans) written to %s"
            % (scenario, len(tracer.spans), args.trace)]


def _trace_summary_payload(tracer: Tracer) -> Dict[str, Any]:
    """The tracer facts every trace-producing command reports."""
    return {
        "spans": len(tracer.spans),
        "events": len(tracer.events),
        "operation_spans": len(tracer.operation_spans()),
        "total_cycles": tracer.now,
        "cycles_by_track": tracer.cycles_by_track(),
        "cycles_by_algorithm": tracer.cycles_by_algorithm(),
    }


# -- subcommand builders ---------------------------------------------------

def _resolve_use_case(args: argparse.Namespace) -> UseCase:
    if args.use_case == "music":
        base = music_player()
    elif args.use_case == "ringtone":
        base = ringtone()
    else:
        base = UseCase(name="custom", content_octets=args.size or 30720,
                       accesses=args.accesses
                       if args.accesses is not None else 25)
    if args.size is not None or args.accesses is not None:
        base = base.scaled(args.size or base.content_octets,
                           accesses=args.accesses)
    return base


def _add_workload_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--use-case",
                        choices=("music", "ringtone", "custom"),
                        default="ringtone")
    parser.add_argument("--size", type=int, default=None,
                        help="content size in octets (overrides the "
                             "use case default)")
    parser.add_argument("--accesses", type=int, default=None,
                        help="number of accesses (overrides the "
                             "use case default)")
    parser.add_argument("--seed", default=DEFAULT_SEED)


def _build_artifact(name: str, args: argparse.Namespace) -> CommandOutput:
    result = _ARTIFACTS[name]()
    return result.render(), {"artifact": name, "result": result}


def _build_all(args: argparse.Namespace) -> CommandOutput:
    results = {name: _ARTIFACTS[name]() for name in _ARTIFACTS}
    text = "\n\n".join(results[name].render()
                       for name in _ARTIFACTS) + "\n"
    return text, {"artifacts": results}


def _build_run(args: argparse.Namespace) -> CommandOutput:
    use_case = _resolve_use_case(args)
    run = run_modeled(use_case, seed=args.seed)
    model = PerformanceModel()
    rows = []
    breakdowns = {}
    for profile in PAPER_PROFILES:
        breakdown = model.evaluate(run.trace, profile)
        breakdowns[profile.name] = breakdown
        rows.append((profile.name, format_ms(breakdown.total_ms)))
    lines = [format_table(
        ("architecture", "time [ms]"), rows,
        title="%s: %d octets x %d accesses"
              % (use_case.name, use_case.content_octets,
                 use_case.accesses))]
    if args.export_trace:
        dump_trace(run.trace, args.export_trace)
        lines.append("trace written to %s" % args.export_trace)
    if args.export_breakdown:
        dump_breakdown(breakdowns[args.arch], args.export_breakdown)
        lines.append("%s breakdown written to %s"
                     % (args.arch, args.export_breakdown))
    if args.trace:
        # Replay the modeled trace onto the cycle timeline: each record
        # becomes one operation span priced under --arch.
        tracer = Tracer(profile=_PROFILES[args.arch], actor="terminal")
        for record in run.trace:
            tracer.on_record(record)
        write_chrome(tracer, args.trace)
        lines.append("cycle trace (%d spans) written to %s"
                     % (len(tracer.spans), args.trace))
    payload = {
        "use_case": {"name": use_case.name,
                     "content_octets": use_case.content_octets,
                     "accesses": use_case.accesses},
        "seed": args.seed,
        "architectures": {name: breakdown_to_dict(breakdown)
                          for name, breakdown in breakdowns.items()},
    }
    return "\n".join(lines), payload


def _build_pareto(args: argparse.Namespace) -> CommandOutput:
    use_case = _resolve_use_case(args)
    run = run_modeled(use_case, seed=args.seed)
    costs = MacroCosts(aes_kgates=args.aes_kgates,
                       sha1_kgates=args.sha1_kgates,
                       rsa_kgates=args.rsa_kgates)
    points = enumerate_design_points(run.trace, costs=costs)
    frontier = pareto_frontier(points, objective=args.objective)
    rows = [
        (point.name, "%.0f" % point.kgates, format_ms(point.time_ms),
         "%.2f" % point.energy_mj,
         "yes" if point in frontier else "")
        for point in points
    ]
    text = format_table(
        ("macro set", "kgates", "time [ms]", "energy [mJ]", "Pareto"),
        rows, title="Design space: %s (objective: %s)"
        % (use_case.name, args.objective))
    payload = {
        "objective": args.objective,
        "points": [{"name": point.name, "kgates": point.kgates,
                    "time_ms": point.time_ms,
                    "energy_mj": point.energy_mj,
                    "pareto": point in frontier}
                   for point in points],
    }
    return text, payload


def _build_battery(args: argparse.Namespace) -> CommandOutput:
    use_case = _resolve_use_case(args)
    run = run_modeled(use_case, seed=args.seed)
    model = PerformanceModel()
    battery = Battery(capacity_mah=args.capacity_mah)
    rows = []
    impacts = {}
    for profile in PAPER_PROFILES:
        impact = battery_impact(model.evaluate(run.trace, profile),
                                battery=battery)
        impacts[profile.name] = impact
        rows.append((
            profile.name, "%.3f" % impact.millijoules,
            "%.2f" % impact.microamp_hours,
            "%.0f" % impact.runs_per_charge(),
        ))
    text = format_table(
        ("architecture", "energy [mJ]", "charge [uAh]",
         "workloads/charge"),
        rows, title="Battery impact: %s (%.0f mAh cell)"
        % (use_case.name, battery.capacity_mah))
    payload = {
        "capacity_mah": battery.capacity_mah,
        "architectures": {
            name: {"millijoules": impact.millijoules,
                   "microamp_hours": impact.microamp_hours,
                   "runs_per_charge": impact.runs_per_charge()}
            for name, impact in impacts.items()},
    }
    return text, payload


def _build_concurrency(args: argparse.Namespace) -> CommandOutput:
    use_case = _resolve_use_case(args)
    run = run_modeled(use_case, seed=args.seed)
    model = PerformanceModel()
    rows = []
    outcomes = {}
    for profile in PAPER_PROFILES:
        result = analyze_concurrency(model.evaluate(run.trace, profile),
                                     overlap=args.overlap)
        outcomes[profile.name] = result
        rows.append((
            profile.name, format_ms(result.wall_clock_ms),
            format_ms(result.cpu_busy_ms),
            "%.1f%%" % (100.0 * result.cpu_freed_fraction),
        ))
    text = format_table(
        ("architecture", "wall clock [ms]", "CPU busy [ms]",
         "CPU freed"),
        rows, title="%s: offload concurrency (overlap %.2f)"
        % (use_case.name, args.overlap))
    return text, {"overlap": args.overlap, "architectures": outcomes}


def _build_resilience(args: argparse.Namespace) -> CommandOutput:
    loss_rates = tuple(float(part)
                       for part in args.loss_rates.split(","))
    result = resilience.generate(seed=args.seed,
                                 loss_rates=loss_rates,
                                 max_attempts=args.max_attempts)
    lines = [result.render()]
    lines.extend(_export_scenario_trace(args, "lossy-registration",
                                        args.seed))
    return "\n".join(lines), result


def _build_durability(args: argparse.Namespace) -> CommandOutput:
    journal_lengths = tuple(int(part)
                            for part in args.journal_lengths.split(","))
    result = durability.generate(seed=args.seed,
                                 journal_lengths=journal_lengths,
                                 rsa_bits=args.rsa_bits)
    lines = [result.render()]
    lines.extend(_export_scenario_trace(args, "durable", args.seed,
                                        rsa_bits=args.rsa_bits))
    return "\n".join(lines), result


def _build_adversary(args: argparse.Namespace) -> CommandOutput:
    result = adversary.generate(seed=args.seed, rsa_bits=args.rsa_bits)
    return result.render(), result


def _build_fleet(args: argparse.Namespace) -> CommandOutput:
    from .sim.ri import RICapacity
    capacity = RICapacity(signing_units=args.ri_capacity,
                          queue_limit=args.ri_queue_limit)
    analysis = fleet.generate(
        seed=args.seed, devices=args.devices, workers=args.workers,
        kernel=args.kernel, ri_capacity=capacity,
        arrival_model=args.arrival, window_seconds=args.window,
        lossy_fraction=args.lossy_fraction,
        loss_rate=args.loss_rate, shard_size=args.shard_size,
        rsa_bits=args.rsa_bits, journaled=args.journaled,
        crash_rate=args.crash_rate,
        adversary_fraction=args.adversary_fraction,
        breaker_cutoff=args.breaker_cutoff)
    lines = [analysis.render()]
    if args.metrics:
        write_metrics(analysis.result.metrics, args.metrics)
        lines.append("merged fleet metrics written to %s" % args.metrics)
    lines.extend(_export_scenario_trace(
        args, "durable" if args.journaled else "full",
        args.seed + "/device", rsa_bits=args.rsa_bits))
    return "\n".join(lines), analysis


def _build_saturation(args: argparse.Namespace) -> CommandOutput:
    from .sim.ri import RICapacity
    rhos = tuple(float(part) for part in args.rhos.split(","))
    capacity = RICapacity(signing_units=args.signing_units,
                          queue_limit=args.queue_limit)
    analysis = saturation.generate(seed=args.seed,
                                   requests=args.requests,
                                   rhos=rhos, capacity=capacity)
    return analysis.render(), analysis


def _build_overload(args: argparse.Namespace) -> CommandOutput:
    analysis = overload.generate(seed=args.seed,
                                 architecture=args.arch,
                                 jobs=args.jobs)
    return analysis.render(), analysis


def _build_trace(args: argparse.Namespace) -> CommandOutput:
    tracer = Tracer(profile=_PROFILES[args.arch], actor="terminal")
    run_scenario(args.scenario, tracer, seed=args.seed,
                 rsa_bits=args.rsa_bits)
    output = args.output or "repro-%s.trace.json" % args.scenario
    metrics_path = args.metrics or "repro-%s.metrics.json" % args.scenario
    write_chrome(tracer, output)
    write_metrics(tracer.metrics, metrics_path)
    profile = _PROFILES[args.arch]
    total_ms = tracer.now / profile.clock_hz * 1000.0
    lines = [
        "%s scenario (seed %r, arch %s): %d spans, %d events, "
        "%d cycles (%.1f ms)"
        % (args.scenario, args.seed, args.arch, len(tracer.spans),
           len(tracer.events), tracer.now, total_ms),
        "Chrome trace written to %s" % output,
        "metrics written to %s" % metrics_path,
    ]
    payload = {"scenario": args.scenario, "seed": args.seed,
               "arch": args.arch, "rsa_bits": args.rsa_bits,
               "output": output, "metrics_path": metrics_path}
    payload.update(_trace_summary_payload(tracer))
    return "\n".join(lines), payload


def _profile_tree(arch: str, scenario: str, seed: str,
                  rsa_bits: int) -> Tuple[ProfileTree, Any]:
    """Trace one profiling scenario and fold it, with its breakdown.

    The returned tree reconciles bit-exactly against the cost model:
    the root's cumulative cycles equal the
    :class:`~repro.core.model.CostBreakdown` total of the same trace
    under the same architecture. A mismatch is a bug in the tracer or
    profiler, so it raises instead of printing a wrong profile.
    """
    profile = _PROFILES[arch]
    tracer = Tracer(profile=profile, actor="terminal")
    trace = run_profile_scenario(scenario, tracer, seed=seed,
                                 rsa_bits=rsa_bits)
    breakdown = PerformanceModel().evaluate(trace, profile)
    tree = ProfileTree.from_tracer(tracer, architecture=arch,
                                   scenario=scenario, seed=seed)
    if tree.total_cycles != breakdown.total_cycles:
        raise AssertionError(
            "profile tree does not reconcile with the cost model: "
            "tree %d cycles != breakdown %d cycles"
            % (tree.total_cycles, breakdown.total_cycles))
    return tree, breakdown


def _build_profile(args: argparse.Namespace) -> CommandOutput:
    tree, breakdown = _profile_tree(args.arch, args.scenario,
                                    args.seed, args.rsa_bits)
    profile = _PROFILES[args.arch]
    lines = [
        "%s scenario (seed %r, arch %s): %d cycles (%.1f ms), "
        "reconciled exactly against the cost model"
        % (args.scenario, args.seed, args.arch, tree.total_cycles,
           profile.cycles_to_ms(tree.total_cycles)),
        "",
        tree.render(max_depth=args.max_depth),
    ]
    if args.collapsed:
        tree.write_collapsed(args.collapsed)
        lines.append("collapsed-stack profile written to %s"
                     % args.collapsed)
    if args.speedscope:
        tree.write_speedscope(args.speedscope)
        lines.append("speedscope profile written to %s"
                     % args.speedscope)
    payload: Dict[str, Any] = {
        "scenario": args.scenario, "arch": args.arch,
        "seed": args.seed, "rsa_bits": args.rsa_bits,
        "total_cycles": tree.total_cycles,
        "breakdown_total_cycles": breakdown.total_cycles,
        "tree": tree.root.to_dict(),
    }
    if args.diff_arch or args.diff_scenario:
        after_arch = args.diff_arch or args.arch
        after_scenario = args.diff_scenario or args.scenario
        after, _ = _profile_tree(after_arch, after_scenario,
                                 args.seed, args.rsa_bits)
        delta = profile_diff(tree, after)
        lines.extend([
            "",
            "diff: %s/%s -> %s/%s"
            % (args.arch, args.scenario, after_arch, after_scenario),
            delta.render(top=args.top),
        ])
        payload["diff"] = {
            "after_arch": after_arch,
            "after_scenario": after_scenario,
            "total_delta": delta.total_delta,
            "deltas": [{"path": list(d.path),
                        "before_cycles": d.before_cycles,
                        "after_cycles": d.after_cycles,
                        "delta": d.delta}
                       for d in delta.deltas[:args.top]],
        }
    return "\n".join(lines), payload


def _command_perfdiff(args: argparse.Namespace) -> int:
    try:
        if args.merge:
            reports = [perf_trajectory.load_report(path)
                       for path in args.merge]
            previous = (perf_trajectory.load_trajectory(args.previous)
                        if args.previous else None)
            trajectory = perf_trajectory.merge(reports,
                                               previous=previous)
            if args.out:
                trajectory.write(args.out)
                print("trajectory written to %s" % args.out)
        else:
            if not args.trajectory:
                print("error: pass a trajectory file or --merge",
                      file=sys.stderr)
                return 2
            trajectory = perf_trajectory.load_trajectory(
                args.trajectory)
    except (OSError, ValueError) as error:
        print("error: %s" % error, file=sys.stderr)
        return 2
    ok, text = perf_trajectory.validate(trajectory)
    print(text)
    print("perf trajectory gate %s" % ("PASSED" if ok else "FAILED"))
    return 0 if ok else 1


def _command_report(args: argparse.Namespace) -> int:
    document = report.generate(seed=args.seed)
    document.write(args.output)
    print("report written to %s (%d characters)"
          % (args.output, len(document.markdown)))
    return 0


def _command_selftest(args: argparse.Namespace) -> int:
    outcome = run_self_tests()
    for name, ok in outcome.results:
        print("%-14s %s" % (name, "PASS" if ok else "FAIL"))
    print("self-test %s" % ("PASSED" if outcome.passed else "FAILED"))
    return 0 if outcome.passed else 1


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="OMA DRM 2 embedded performance model "
                    "(Thull & Sannino, DATE 2005 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def analysis_parser(name: str, help_text: str,
                        build: Callable[[argparse.Namespace],
                                        CommandOutput]
                        ) -> argparse.ArgumentParser:
        sub = subparsers.add_parser(name, help=help_text)
        sub.add_argument("--json", action="store_true",
                         help="emit machine-readable JSON instead of "
                              "the text rendering")
        sub.set_defaults(handler=lambda args, build=build:
                         _analysis_command(args, build))
        return sub

    for name in _ARTIFACTS:
        analysis_parser(name, "regenerate paper artifact %r" % name,
                        lambda args, name=name:
                        _build_artifact(name, args))

    analysis_parser("all", "regenerate every paper artifact",
                    _build_all)

    sub = analysis_parser("run", "price a workload", _build_run)
    _add_workload_arguments(sub)
    sub.add_argument("--arch", choices=tuple(_PROFILES),
                     default="SW", help="architecture for "
                                        "--export-breakdown/--trace")
    sub.add_argument("--export-trace", metavar="PATH", default=None)
    sub.add_argument("--export-breakdown", metavar="PATH", default=None)
    sub.add_argument("--trace", metavar="PATH", default=None,
                     help="write a Chrome trace of the priced workload "
                          "on the cycle timeline")

    sub = analysis_parser("pareto", "gate/time design-space frontier",
                          _build_pareto)
    _add_workload_arguments(sub)
    sub.add_argument("--objective", choices=("time", "energy"),
                     default="time")
    sub.add_argument("--aes-kgates", type=float, default=25.0)
    sub.add_argument("--sha1-kgates", type=float, default=20.0)
    sub.add_argument("--rsa-kgates", type=float, default=100.0)

    sub = analysis_parser("battery",
                          "battery-life impact per architecture",
                          _build_battery)
    _add_workload_arguments(sub)
    sub.add_argument("--capacity-mah", type=float, default=850.0)

    sub = analysis_parser("concurrency",
                          "CPU-busy vs wall-clock per architecture",
                          _build_concurrency)
    _add_workload_arguments(sub)
    sub.add_argument("--overlap", type=float, default=1.0,
                     help="macro/CPU overlap factor in [0, 1]")

    sub = analysis_parser("resilience",
                          "expected retry overhead on a lossy bearer",
                          _build_resilience)
    sub.add_argument("--seed", default=DEFAULT_SEED)
    sub.add_argument("--loss-rates", default="0,0.05,0.1,0.2,0.4",
                     help="comma-separated per-transmission loss rates")
    sub.add_argument("--max-attempts", type=int,
                     default=resilience.DEFAULT_MAX_ATTEMPTS)
    sub.add_argument("--trace", metavar="PATH", default=None,
                     help="write a Chrome trace of one lossy "
                          "registration at this seed")

    sub = analysis_parser("durability",
                          "write-ahead journal overhead and "
                          "power-loss recovery cost",
                          _build_durability)
    sub.add_argument("--seed", default=DEFAULT_SEED)
    sub.add_argument("--journal-lengths",
                     default=",".join(str(n) for n in
                                      durability.DEFAULT_JOURNAL_LENGTHS),
                     help="comma-separated journal lengths (records) "
                          "for the recovery projection")
    sub.add_argument("--rsa-bits", type=int, default=1024,
                     help="modulus size for the calibration run")
    sub.add_argument("--trace", metavar="PATH", default=None,
                     help="write a Chrome trace of one journaled "
                          "run with recovery at this seed")

    sub = analysis_parser("adversary",
                          "attack sweep, forgery drain and outage "
                          "degradation",
                          _build_adversary)
    sub.add_argument("--seed", default=DEFAULT_SEED)
    sub.add_argument("--rsa-bits", type=int, default=1024,
                     help="modulus size for the attacked worlds")

    sub = analysis_parser("fleet",
                          "simulate a large device population "
                          "against one RI",
                          _build_fleet)
    sub.add_argument("--seed", default=DEFAULT_SEED)
    sub.add_argument("--devices", type=int,
                     default=fleet.REPORT_DEVICES,
                     help="population size (10^4-10^6)")
    sub.add_argument("--workers", type=int, default=1,
                     help="worker processes; any value gives "
                          "bit-identical statistics")
    sub.add_argument("--arrival", choices=("uniform", "peaked"),
                     default="uniform",
                     help="arrival distribution over the window")
    sub.add_argument("--window", type=int, default=3600,
                     help="arrival window in seconds")
    sub.add_argument("--lossy-fraction", type=float, default=0.2,
                     help="fraction of devices on a lossy bearer")
    sub.add_argument("--loss-rate", type=float, default=0.1,
                     help="per-transmission loss rate for lossy devices")
    sub.add_argument("--shard-size", type=int, default=25_000,
                     help="devices per shard (fixed, worker-"
                          "independent)")
    sub.add_argument("--rsa-bits", type=int, default=1024,
                     help="modulus size for the calibration run")
    sub.add_argument("--journaled", action="store_true",
                     help="price power-loss-atomic (journaled) storage "
                          "on every device")
    sub.add_argument("--crash-rate", type=float, default=0.0,
                     help="per-device power-loss probability (requires "
                          "--journaled)")
    sub.add_argument("--adversary-fraction", type=float, default=0.0,
                     help="fraction of devices behind an active forger "
                          "(their registrations fail and are cut off "
                          "by the circuit breaker)")
    sub.add_argument("--breaker-cutoff", type=int, default=2,
                     help="identical trust failures before the forgery "
                          "cut-off aborts an attacked flow")
    sub.add_argument("--metrics", metavar="PATH", default=None,
                     help="write the merged fleet metrics registry "
                          "as JSON")
    sub.add_argument("--trace", metavar="PATH", default=None,
                     help="write a Chrome trace of one representative "
                          "device at this seed")
    sub.add_argument("--kernel", action="store_true",
                     help="replay the population against one shared "
                          "RI per architecture on the event kernel "
                          "(adds the contention table; sequential "
                          "statistics are unchanged)")
    sub.add_argument("--ri-capacity", type=int, default=1,
                     help="concurrent signing units of the shared RI "
                          "(--kernel mode)")
    sub.add_argument("--ri-queue-limit", type=int, default=None,
                     help="bound the shared RI's signing queue; "
                          "overflowing requests are refused "
                          "(--kernel mode)")

    sub = analysis_parser("saturation",
                          "RI utilization/latency vs offered load "
                          "per architecture (event kernel)",
                          _build_saturation)
    sub.add_argument("--seed", default=DEFAULT_SEED)
    sub.add_argument("--requests", type=int,
                     default=saturation.REPORT_REQUESTS,
                     help="Poisson request arrivals per measurement "
                          "point")
    sub.add_argument("--rhos", default=",".join(
        "%g" % rho for rho in saturation.DEFAULT_RHOS),
                     help="comma-separated offered loads as fractions "
                          "of nominal capacity")
    sub.add_argument("--signing-units", type=int, default=1,
                     help="concurrent signing units of the RI")
    sub.add_argument("--queue-limit", type=int, default=None,
                     help="bound the signing queue; overflowing "
                          "requests are refused")

    sub = analysis_parser("overload",
                          "retry-storm metastability: admission "
                          "control vs retry discipline under a load "
                          "spike",
                          _build_overload)
    sub.add_argument("--seed", default=DEFAULT_SEED)
    sub.add_argument("--arch", choices=tuple(_PROFILES), default="SW",
                     help="architecture profile of the storm grid "
                          "(the cross-check table always covers the "
                          "others)")
    sub.add_argument("--jobs", type=int, default=1,
                     help="worker processes for the sweep; results "
                          "are bit-identical for any count")

    sub = analysis_parser("trace",
                          "trace a named scenario on the cycle "
                          "timeline and export it",
                          _build_trace)
    sub.add_argument("--scenario", choices=tuple(SCENARIOS),
                     default="registration",
                     help="named scenario from repro.usecases.tracing")
    sub.add_argument("--seed", default=DEFAULT_SEED)
    sub.add_argument("--arch", choices=tuple(_PROFILES), default="SW",
                     help="architecture profile pricing the timeline")
    sub.add_argument("--rsa-bits", type=int, default=1024,
                     help="modulus size for the traced world")
    sub.add_argument("--output", metavar="PATH", default=None,
                     help="Chrome trace-event JSON path (default "
                          "repro-<scenario>.trace.json)")
    sub.add_argument("--metrics", metavar="PATH", default=None,
                     help="metrics registry JSON path (default "
                          "repro-<scenario>.metrics.json)")

    sub = analysis_parser("profile",
                          "fold a traced scenario into an exact "
                          "virtual-cycle call tree and export/diff it",
                          _build_profile)
    sub.add_argument("--scenario", choices=PROFILE_SCENARIOS,
                     default="registration",
                     help="profiling scenario (protocol-stack names "
                          "plus the modeled paper-scale 'music' and "
                          "'ringtone')")
    sub.add_argument("--seed", default=DEFAULT_SEED)
    sub.add_argument("--arch", choices=tuple(_PROFILES), default="SW",
                     help="architecture profile pricing the timeline")
    sub.add_argument("--rsa-bits", type=int, default=1024,
                     help="modulus size for protocol-stack scenarios")
    sub.add_argument("--max-depth", type=int, default=None,
                     help="truncate the rendered tree at this depth")
    sub.add_argument("--collapsed", metavar="PATH", default=None,
                     help="write a collapsed-stack (flamegraph) "
                          "profile")
    sub.add_argument("--speedscope", metavar="PATH", default=None,
                     help="write a speedscope JSON profile")
    sub.add_argument("--diff-arch", choices=tuple(_PROFILES),
                     default=None,
                     help="diff against the same scenario under "
                          "another architecture")
    sub.add_argument("--diff-scenario", choices=PROFILE_SCENARIOS,
                     default=None,
                     help="diff against another scenario (same "
                          "architecture unless --diff-arch)")
    sub.add_argument("--top", type=int, default=10,
                     help="paths shown in the diff table")

    sub = subparsers.add_parser("perfdiff",
                                help="validate/merge BENCH_*.json "
                                     "performance artifacts and fail "
                                     "on regressions")
    sub.add_argument("trajectory", nargs="?", default=None,
                     help="a BENCH_trajectory.json to validate "
                          "self-contained")
    sub.add_argument("--merge", metavar="BENCH.json", nargs="+",
                     default=None,
                     help="merge these bench-report artifacts into a "
                          "trajectory instead of validating one")
    sub.add_argument("--previous", metavar="PATH", default=None,
                     help="prior trajectory supplying reference "
                          "values for --merge")
    sub.add_argument("--out", metavar="PATH", default=None,
                     help="write the merged trajectory here")
    sub.set_defaults(handler=_command_perfdiff)

    sub = subparsers.add_parser("selftest",
                                help="run the crypto known-answer "
                                     "self-tests")
    sub.set_defaults(handler=_command_selftest)

    sub = subparsers.add_parser("lint",
                                help="run the AST-based invariant "
                                     "analyzer")
    lint_cli.add_arguments(sub)
    sub.set_defaults(handler=lint_cli.run)

    sub = subparsers.add_parser("report",
                                help="write the full paper-vs-measured "
                                     "Markdown report")
    sub.add_argument("--output", metavar="PATH", default="REPORT.md")
    sub.add_argument("--seed", default=DEFAULT_SEED)
    sub.set_defaults(handler=_command_report)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
