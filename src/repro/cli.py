"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``table1`` / ``figure5`` / ``figure6`` / ``figure7`` / ``claims`` —
  regenerate one paper artifact.
* ``all`` — regenerate everything (the quickstart).
* ``run`` — price a (possibly custom) use case under one architecture,
  with optional JSON export of the trace/breakdown.
* ``pareto`` — print the gate/time Pareto frontier for a workload.
* ``battery`` — battery-life impact of a workload per architecture.
* ``concurrency`` — CPU-busy vs wall-clock under macro offload.
* ``resilience`` — expected retry overhead on a lossy bearer.
* ``durability`` — write-ahead journal overhead and recovery cost.
* ``fleet`` — simulate a large device population against one RI.
* ``report`` — write the full paper-vs-measured Markdown report.
* ``selftest`` — run the cryptographic known-answer self-tests.
* ``lint`` — run the AST-based invariant analyzer (``repro.lint``).
"""

import argparse
import sys
from typing import List, Optional

from .analysis import (claims, durability, figure5, figure6, figure7,
                       fleet, report, resilience, table1)
from .analysis.common import DEFAULT_SEED
from .analysis.formatting import format_ms, format_table
from .core.architecture import PAPER_PROFILES
from .core.battery import Battery, battery_impact
from .core.concurrency import analyze as analyze_concurrency
from .crypto.selftest import run_self_tests
from .lint import cli as lint_cli
from .core.design_space import (MacroCosts, enumerate_design_points,
                                pareto_frontier)
from .core.model import PerformanceModel
from .core.serialization import dump_breakdown, dump_trace
from .usecases.catalog import music_player, ringtone
from .usecases.scenario import UseCase
from .usecases.workload import run_modeled

_ARTIFACTS = {
    "table1": table1.generate,
    "figure5": figure5.generate,
    "figure6": figure6.generate,
    "figure7": figure7.generate,
    "claims": claims.generate,
}


def _resolve_use_case(args: argparse.Namespace) -> UseCase:
    if args.use_case == "music":
        base = music_player()
    elif args.use_case == "ringtone":
        base = ringtone()
    else:
        base = UseCase(name="custom", content_octets=args.size or 30720,
                       accesses=args.accesses
                       if args.accesses is not None else 25)
    if args.size is not None or args.accesses is not None:
        base = base.scaled(args.size or base.content_octets,
                           accesses=args.accesses)
    return base


def _add_workload_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--use-case",
                        choices=("music", "ringtone", "custom"),
                        default="ringtone")
    parser.add_argument("--size", type=int, default=None,
                        help="content size in octets (overrides the "
                             "use case default)")
    parser.add_argument("--accesses", type=int, default=None,
                        help="number of accesses (overrides the "
                             "use case default)")
    parser.add_argument("--seed", default=DEFAULT_SEED)


def _command_artifact(name: str, args: argparse.Namespace) -> int:
    print(_ARTIFACTS[name]().render())
    return 0


def _command_all(args: argparse.Namespace) -> int:
    for name in ("table1", "figure5", "figure6", "figure7", "claims"):
        print(_ARTIFACTS[name]().render())
        print()
    return 0


def _command_run(args: argparse.Namespace) -> int:
    use_case = _resolve_use_case(args)
    run = run_modeled(use_case, seed=args.seed)
    model = PerformanceModel()
    rows = []
    breakdowns = {}
    for profile in PAPER_PROFILES:
        breakdown = model.evaluate(run.trace, profile)
        breakdowns[profile.name] = breakdown
        rows.append((profile.name, format_ms(breakdown.total_ms)))
    print(format_table(
        ("architecture", "time [ms]"), rows,
        title="%s: %d octets x %d accesses"
              % (use_case.name, use_case.content_octets,
                 use_case.accesses)))
    if args.export_trace:
        dump_trace(run.trace, args.export_trace)
        print("trace written to %s" % args.export_trace)
    if args.export_breakdown:
        dump_breakdown(breakdowns[args.arch], args.export_breakdown)
        print("%s breakdown written to %s"
              % (args.arch, args.export_breakdown))
    return 0


def _command_pareto(args: argparse.Namespace) -> int:
    use_case = _resolve_use_case(args)
    run = run_modeled(use_case, seed=args.seed)
    costs = MacroCosts(aes_kgates=args.aes_kgates,
                       sha1_kgates=args.sha1_kgates,
                       rsa_kgates=args.rsa_kgates)
    points = enumerate_design_points(run.trace, costs=costs)
    frontier = pareto_frontier(points, objective=args.objective)
    rows = [
        (point.name, "%.0f" % point.kgates, format_ms(point.time_ms),
         "%.2f" % point.energy_mj,
         "yes" if point in frontier else "")
        for point in points
    ]
    print(format_table(
        ("macro set", "kgates", "time [ms]", "energy [mJ]", "Pareto"),
        rows, title="Design space: %s (objective: %s)"
        % (use_case.name, args.objective)))
    return 0


def _command_battery(args: argparse.Namespace) -> int:
    use_case = _resolve_use_case(args)
    run = run_modeled(use_case, seed=args.seed)
    model = PerformanceModel()
    battery = Battery(capacity_mah=args.capacity_mah)
    rows = []
    for profile in PAPER_PROFILES:
        impact = battery_impact(model.evaluate(run.trace, profile),
                                battery=battery)
        rows.append((
            profile.name, "%.3f" % impact.millijoules,
            "%.2f" % impact.microamp_hours,
            "%.0f" % impact.runs_per_charge(),
        ))
    print(format_table(
        ("architecture", "energy [mJ]", "charge [uAh]",
         "workloads/charge"),
        rows, title="Battery impact: %s (%.0f mAh cell)"
        % (use_case.name, battery.capacity_mah)))
    return 0


def _command_concurrency(args: argparse.Namespace) -> int:
    use_case = _resolve_use_case(args)
    run = run_modeled(use_case, seed=args.seed)
    model = PerformanceModel()
    rows = []
    for profile in PAPER_PROFILES:
        result = analyze_concurrency(model.evaluate(run.trace, profile),
                                     overlap=args.overlap)
        rows.append((
            profile.name, format_ms(result.wall_clock_ms),
            format_ms(result.cpu_busy_ms),
            "%.1f%%" % (100.0 * result.cpu_freed_fraction),
        ))
    print(format_table(
        ("architecture", "wall clock [ms]", "CPU busy [ms]",
         "CPU freed"),
        rows, title="%s: offload concurrency (overlap %.2f)"
        % (use_case.name, args.overlap)))
    return 0


def _command_resilience(args: argparse.Namespace) -> int:
    try:
        loss_rates = tuple(float(part)
                           for part in args.loss_rates.split(","))
        result = resilience.generate(seed=args.seed,
                                     loss_rates=loss_rates,
                                     max_attempts=args.max_attempts)
    except ValueError as error:
        print("error: %s" % error, file=sys.stderr)
        return 2
    print(result.render())
    return 0


def _command_durability(args: argparse.Namespace) -> int:
    try:
        journal_lengths = tuple(int(part)
                                for part in args.journal_lengths.split(","))
        result = durability.generate(seed=args.seed,
                                     journal_lengths=journal_lengths,
                                     rsa_bits=args.rsa_bits)
    except ValueError as error:
        print("error: %s" % error, file=sys.stderr)
        return 2
    print(result.render())
    return 0


def _command_fleet(args: argparse.Namespace) -> int:
    try:
        analysis = fleet.generate(
            seed=args.seed, devices=args.devices, workers=args.workers,
            arrival_model=args.arrival, window_seconds=args.window,
            lossy_fraction=args.lossy_fraction,
            loss_rate=args.loss_rate, shard_size=args.shard_size,
            rsa_bits=args.rsa_bits, journaled=args.journaled,
            crash_rate=args.crash_rate)
    except ValueError as error:
        print("error: %s" % error, file=sys.stderr)
        return 2
    print(analysis.render())
    return 0


def _command_report(args: argparse.Namespace) -> int:
    document = report.generate(seed=args.seed)
    document.write(args.output)
    print("report written to %s (%d characters)"
          % (args.output, len(document.markdown)))
    return 0


def _command_selftest(args: argparse.Namespace) -> int:
    outcome = run_self_tests()
    for name, ok in outcome.results:
        print("%-14s %s" % (name, "PASS" if ok else "FAIL"))
    print("self-test %s" % ("PASSED" if outcome.passed else "FAILED"))
    return 0 if outcome.passed else 1


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="OMA DRM 2 embedded performance model "
                    "(Thull & Sannino, DATE 2005 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    for name in _ARTIFACTS:
        sub = subparsers.add_parser(
            name, help="regenerate paper artifact %r" % name)
        sub.set_defaults(
            handler=lambda args, name=name: _command_artifact(name, args))

    sub = subparsers.add_parser("all",
                                help="regenerate every paper artifact")
    sub.set_defaults(handler=_command_all)

    sub = subparsers.add_parser("run", help="price a workload")
    _add_workload_arguments(sub)
    sub.add_argument("--arch", choices=("SW", "SW/HW", "HW"),
                     default="SW", help="architecture for "
                                        "--export-breakdown")
    sub.add_argument("--export-trace", metavar="PATH", default=None)
    sub.add_argument("--export-breakdown", metavar="PATH", default=None)
    sub.set_defaults(handler=_command_run)

    sub = subparsers.add_parser("pareto",
                                help="gate/time design-space frontier")
    _add_workload_arguments(sub)
    sub.add_argument("--objective", choices=("time", "energy"),
                     default="time")
    sub.add_argument("--aes-kgates", type=float, default=25.0)
    sub.add_argument("--sha1-kgates", type=float, default=20.0)
    sub.add_argument("--rsa-kgates", type=float, default=100.0)
    sub.set_defaults(handler=_command_pareto)

    sub = subparsers.add_parser("battery",
                                help="battery-life impact per "
                                     "architecture")
    _add_workload_arguments(sub)
    sub.add_argument("--capacity-mah", type=float, default=850.0)
    sub.set_defaults(handler=_command_battery)

    sub = subparsers.add_parser("concurrency",
                                help="CPU-busy vs wall-clock per "
                                     "architecture")
    _add_workload_arguments(sub)
    sub.add_argument("--overlap", type=float, default=1.0,
                     help="macro/CPU overlap factor in [0, 1]")
    sub.set_defaults(handler=_command_concurrency)

    sub = subparsers.add_parser("resilience",
                                help="expected retry overhead on a "
                                     "lossy bearer")
    sub.add_argument("--seed", default=DEFAULT_SEED)
    sub.add_argument("--loss-rates", default="0,0.05,0.1,0.2,0.4",
                     help="comma-separated per-transmission loss rates")
    sub.add_argument("--max-attempts", type=int,
                     default=resilience.DEFAULT_MAX_ATTEMPTS)
    sub.set_defaults(handler=_command_resilience)

    sub = subparsers.add_parser("durability",
                                help="write-ahead journal overhead and "
                                     "power-loss recovery cost")
    sub.add_argument("--seed", default=DEFAULT_SEED)
    sub.add_argument("--journal-lengths",
                     default=",".join(str(n) for n in
                                      durability.DEFAULT_JOURNAL_LENGTHS),
                     help="comma-separated journal lengths (records) "
                          "for the recovery projection")
    sub.add_argument("--rsa-bits", type=int, default=1024,
                     help="modulus size for the calibration run")
    sub.set_defaults(handler=_command_durability)

    sub = subparsers.add_parser("fleet",
                                help="simulate a large device "
                                     "population against one RI")
    sub.add_argument("--seed", default=DEFAULT_SEED)
    sub.add_argument("--devices", type=int,
                     default=fleet.REPORT_DEVICES,
                     help="population size (10^4-10^6)")
    sub.add_argument("--workers", type=int, default=1,
                     help="worker processes; any value gives "
                          "bit-identical statistics")
    sub.add_argument("--arrival", choices=("uniform", "peaked"),
                     default="uniform",
                     help="arrival distribution over the window")
    sub.add_argument("--window", type=int, default=3600,
                     help="arrival window in seconds")
    sub.add_argument("--lossy-fraction", type=float, default=0.2,
                     help="fraction of devices on a lossy bearer")
    sub.add_argument("--loss-rate", type=float, default=0.1,
                     help="per-transmission loss rate for lossy devices")
    sub.add_argument("--shard-size", type=int, default=25_000,
                     help="devices per shard (fixed, worker-"
                          "independent)")
    sub.add_argument("--rsa-bits", type=int, default=1024,
                     help="modulus size for the calibration run")
    sub.add_argument("--journaled", action="store_true",
                     help="price power-loss-atomic (journaled) storage "
                          "on every device")
    sub.add_argument("--crash-rate", type=float, default=0.0,
                     help="per-device power-loss probability (requires "
                          "--journaled)")
    sub.set_defaults(handler=_command_fleet)

    sub = subparsers.add_parser("selftest",
                                help="run the crypto known-answer "
                                     "self-tests")
    sub.set_defaults(handler=_command_selftest)

    sub = subparsers.add_parser("lint",
                                help="run the AST-based invariant "
                                     "analyzer")
    lint_cli.add_arguments(sub)
    sub.set_defaults(handler=lint_cli.run)

    sub = subparsers.add_parser("report",
                                help="write the full paper-vs-measured "
                                     "Markdown report")
    sub.add_argument("--output", metavar="PATH", default="REPORT.md")
    sub.add_argument("--seed", default=DEFAULT_SEED)
    sub.set_defaults(handler=_command_report)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
