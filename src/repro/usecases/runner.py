"""End-to-end use-case execution over the functional DRM model.

:func:`run_functional` drives a complete consumption process — register,
acquire, install, consume N times — through the real protocol stack with
real cryptography, and returns the metered operation trace together with
the artifacts whose sizes the cost model depends on.

Pure-Python crypto makes paper-scale payloads (3.5 MB x 5 playbacks)
impractical to execute functionally in a test loop, so
:mod:`repro.usecases.workload` provides the complementary *modeled* path:
a functional run at calibration scale whose trace is then exactly rescaled
to paper scale. The two paths are property-tested to agree wherever both
are feasible.
"""

from dataclasses import dataclass
from typing import Dict, Optional

from ..core.costs import CostOptions
from ..core.trace import OperationTrace
from ..drm.dcf import DCF
from ..drm.identifiers import content_id as make_content_id
from ..drm.identifiers import domain_id as make_domain_id
from ..drm.identifiers import rights_object_id
from .scenario import UseCase
from .world import DRMWorld

#: Domain used by domain-enabled scenarios.
DEFAULT_DOMAIN = "family"


def synthetic_content(octets: int) -> bytes:
    """Deterministic pseudo-content of the requested size.

    A short repeating texture rather than DRBG output: content bytes are
    workload data, not cryptographic material, and generating megabytes
    through HMAC-DRBG would only slow the simulation down.
    """
    pattern = bytes(range(251))  # prime length avoids block alignment
    repeats = octets // len(pattern) + 1
    return (pattern * repeats)[:octets]


@dataclass
class ScenarioRun:
    """Everything a completed use-case run yields."""

    use_case: UseCase
    world: DRMWorld
    trace: OperationTrace
    dcf: DCF
    clear_content_octets: int
    sizes: Dict[str, int]

    @property
    def dcf_octets(self) -> int:
        """Canonical DCF size — what the per-access hash covers."""
        return self.sizes["dcf"]

    @property
    def encrypted_payload_octets(self) -> int:
        """Padded AES-CBC payload size inside the DCF."""
        return self.sizes["encrypted_payload"]


def run_functional(use_case: UseCase, seed: str = "repro-world",
                   options: CostOptions = CostOptions(),
                   sign_device_ros: bool = False,
                   verify_dcf_on_install: bool = False,
                   kdev_optimization: bool = True,
                   consume_times: Optional[int] = None,
                   world: Optional[DRMWorld] = None) -> ScenarioRun:
    """Execute ``use_case`` end to end and return its metered trace.

    ``consume_times`` overrides the number of consumptions actually
    executed (the rights grant still matches ``use_case.accesses``); the
    workload scaler uses this to run a single calibration access.
    """
    if world is None:
        world = DRMWorld.create(
            seed=seed, metered=True, options=options,
            sign_device_ros=sign_device_ros,
            verify_dcf_on_install=verify_dcf_on_install,
            kdev_optimization=kdev_optimization,
        )
    agent, ri, ci = world.agent, world.ri, world.ci

    # Content publication (Content Issuer side, never metered).
    cid = make_content_id(use_case.name.lower().replace(" ", "-"))
    clear = synthetic_content(use_case.content_octets)
    dcf = ci.publish(
        content_id=cid, content_type=use_case.content_type,
        clear_content=clear, rights_issuer_url="http://ri.example/shop",
        metadata=use_case.metadata,
    )

    # License listing (CI-RI negotiation, out of scope for the standard).
    ro_id = rights_object_id(cid + "-license")
    ri.add_offer(ro_id, ci.negotiate_license(cid),
                 use_case.effective_rights())

    # Phase 1-2: registration and acquisition (plus domain join if asked).
    agent.register(ri)
    domain = None
    if use_case.domain:
        domain = make_domain_id(DEFAULT_DOMAIN)
        ri.create_domain(domain)
        agent.join_domain(ri, domain)
    protected_ro = agent.acquire(ri, ro_id, domain_id=domain)

    # Phase 3: installation (Figure 3 unwrap + C2dev re-wrap).
    installed = agent.install(protected_ro, dcf)

    # Phase 4: consumption, once per access.
    accesses = use_case.accesses if consume_times is None else consume_times
    for _ in range(accesses):
        result = agent.consume(cid)
        assert result.clear_content == clear  # functional correctness

    trace = (world.agent_crypto.trace
             if hasattr(world.agent_crypto, "trace")
             else OperationTrace())
    sizes = {
        "dcf": len(dcf.to_bytes()),
        "encrypted_payload": len(dcf.encrypted_data),
        "ro_payload": len(installed.ro.payload_bytes()),
        "device_certificate": len(agent.certificate.to_bytes()),
        "ri_certificate": len(ri.certificate.to_bytes()),
    }
    return ScenarioRun(
        use_case=use_case, world=world, trace=trace, dcf=dcf,
        clear_content_octets=len(clear), sizes=sizes,
    )
