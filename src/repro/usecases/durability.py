"""Measuring what power-loss-atomic storage costs the terminal.

The journal (:mod:`repro.store`) HMAC-frames every storage mutation
through the agent's crypto provider, so durability is priced exactly
like the protocol itself: run the same consumption process twice —
once on volatile storage, once journaled — under metered crypto, and
the per-phase cycle difference *is* the journal overhead. A final
metered :meth:`~repro.drm.agent.DRMAgent.recover_storage` prices the
replay a device pays after power loss.

Everything is measured at calibration scale from one seed, mirroring
:func:`repro.usecases.fleet.build_cost_templates`; the resulting
:class:`DurabilityTemplates` is integer-valued so fleet-scale
accounting stays exact and shard-order independent.
"""

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict

from ..core.architecture import PAPER_PROFILES
from ..core.model import PerformanceModel
from ..core.trace import Phase
from ..drm.identifiers import content_id as make_content_id
from ..drm.identifiers import rights_object_id
from ..drm.rel import play_count
from .runner import synthetic_content
from .workload import DEFAULT_CALIBRATION_OCTETS
from .world import RSA_BITS, DRMWorld

#: Accesses the calibration run consumes (rights are minted to match).
CALIBRATION_ACCESSES = 2


@dataclass(frozen=True)
class DurabilityTemplates:
    """Pre-priced journal costs, keyed by architecture name.

    ``*_overhead_cycles`` are the extra cycles journaling adds to one
    registration, one installation and one content access; the record
    and octet counts describe how fast the journal grows. Recovery is
    priced as a measured replay over ``recovery_records`` records —
    scale by the actual journal length to price any crash point.
    """

    registration_overhead_cycles: Dict[str, int]
    installation_overhead_cycles: Dict[str, int]
    access_overhead_cycles: Dict[str, int]
    registration_records: int
    install_records: int
    access_records: int
    registration_octets: int
    install_octets: int
    access_octets: int
    recovery_cycles: Dict[str, int]
    recovery_records: int

    def recovery_cycles_for(self, architecture: str,
                            records: int) -> int:
        """Replay cost for a journal of ``records`` records (integer)."""
        if records < 0:
            raise ValueError("record count must be non-negative")
        per = self.recovery_cycles[architecture]
        return per * records // max(1, self.recovery_records)


@dataclass(frozen=True)
class DurabilityMeasurement:
    """One full durability calibration: overheads plus baselines.

    The volatile baselines let reports express the overhead as a share
    of the work the paper already prices.
    """

    seed: str
    rsa_bits: int
    calibration_octets: int
    templates: DurabilityTemplates
    baseline_registration_cycles: Dict[str, int]
    baseline_installation_cycles: Dict[str, int]
    baseline_access_cycles: Dict[str, int]
    recovery_transactions_applied: int


def _run_consumption_process(world: DRMWorld, calibration_octets: int):
    """Register, acquire, install, consume — the measured sequence.

    Returns per-step journal growth as ((records, octets), ...) for
    registration, installation and one access; zeros on volatile
    storage (which has no journal).
    """
    cid = make_content_id("durability-probe")
    clear = synthetic_content(calibration_octets)
    dcf = world.ci.publish(
        content_id=cid, content_type="audio/midi", clear_content=clear,
        rights_issuer_url="http://ri.example/shop",
    )
    ro_id = rights_object_id(cid + "-license")
    world.ri.add_offer(ro_id, world.ci.negotiate_license(cid),
                       play_count(CALIBRATION_ACCESSES))

    journal = getattr(world.agent.storage, "journal", None)

    def counters():
        if journal is None:
            return 0, 0
        return journal.records_appended, len(journal.flash)

    world.agent.register(world.ri)
    after_register = counters()
    protected_ro = world.agent.acquire(world.ri, ro_id)
    world.agent.install(protected_ro, dcf)
    after_install = counters()
    world.agent.consume(cid)
    after_access = counters()
    for _ in range(CALIBRATION_ACCESSES - 1):
        world.agent.consume(cid)

    registration = after_register
    install = tuple(b - a for a, b in zip(after_register, after_install))
    access = tuple(b - a for a, b in zip(after_install, after_access))
    return registration, install, access


def _phase_cycles(trace, phase: Phase,
                  model: PerformanceModel) -> Dict[str, int]:
    sub = trace.filter(phase=phase)
    return {profile.name: model.evaluate(sub, profile).total_cycles
            for profile in PAPER_PROFILES}


def measure_durability(seed: str, rsa_bits: int = RSA_BITS,
                       calibration_octets: int =
                       DEFAULT_CALIBRATION_OCTETS
                       ) -> DurabilityMeasurement:
    """Price journal and recovery overhead from one calibration seed."""
    return _cached_measurement(seed, rsa_bits, calibration_octets)


def build_durability_templates(seed: str, rsa_bits: int = RSA_BITS,
                               calibration_octets: int =
                               DEFAULT_CALIBRATION_OCTETS
                               ) -> DurabilityTemplates:
    """Just the fleet-facing templates of :func:`measure_durability`."""
    return measure_durability(seed, rsa_bits,
                              calibration_octets).templates


@lru_cache(maxsize=8)
def _cached_measurement(seed: str, rsa_bits: int,
                        calibration_octets: int) -> DurabilityMeasurement:
    model = PerformanceModel()

    # Identical protocol sequence, volatile vs. journaled: same seed,
    # same keys, same messages — the trace difference is the journal.
    volatile = DRMWorld.create(seed=seed + "/durability", metered=True,
                               rsa_bits=rsa_bits, durable=False)
    _run_consumption_process(volatile, calibration_octets)
    volatile_trace = volatile.agent_crypto.reset_trace()

    durable = DRMWorld.create(seed=seed + "/durability", metered=True,
                              rsa_bits=rsa_bits, durable=True)
    registration, install, access = _run_consumption_process(
        durable, calibration_octets)
    durable_trace = durable.agent_crypto.reset_trace()

    def overhead(phase: Phase, divisor: int = 1) -> Dict[str, int]:
        with_journal = _phase_cycles(durable_trace, phase, model)
        baseline = _phase_cycles(volatile_trace, phase, model)
        return {name: (with_journal[name] - baseline[name]) // divisor
                for name in with_journal}

    # The consumption phase covers CALIBRATION_ACCESSES identical
    # accesses; dividing yields the exact per-access journal overhead.
    access_overhead = overhead(Phase.CONSUMPTION, CALIBRATION_ACCESSES)

    # Power loss after the full run, then a metered reboot replay.
    report = durable.agent.recover_storage()
    recovery_trace = durable.agent_crypto.reset_trace()
    recovery_cycles = {
        profile.name: model.evaluate(recovery_trace,
                                     profile).total_cycles
        for profile in PAPER_PROFILES
    }

    templates = DurabilityTemplates(
        registration_overhead_cycles=overhead(Phase.REGISTRATION),
        installation_overhead_cycles=overhead(Phase.INSTALLATION),
        access_overhead_cycles=access_overhead,
        registration_records=registration[0],
        install_records=install[0],
        access_records=access[0],
        registration_octets=registration[1],
        install_octets=install[1],
        access_octets=access[1],
        recovery_cycles=recovery_cycles,
        recovery_records=report.records_scanned,
    )
    return DurabilityMeasurement(
        seed=seed, rsa_bits=rsa_bits,
        calibration_octets=calibration_octets,
        templates=templates,
        baseline_registration_cycles=_phase_cycles(
            volatile_trace, Phase.REGISTRATION, model),
        baseline_installation_cycles=_phase_cycles(
            volatile_trace, Phase.INSTALLATION, model),
        baseline_access_cycles={
            name: cycles // CALIBRATION_ACCESSES
            for name, cycles in _phase_cycles(
                volatile_trace, Phase.CONSUMPTION, model).items()},
        recovery_transactions_applied=report.transactions_applied,
    )
