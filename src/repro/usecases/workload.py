"""Exact trace rescaling: paper-scale workloads from calibration runs.

The paper's figures need traces for a 3.5 MB DCF consumed five times —
workloads whose *structure* is content-size independent (the protocol
phases perform the same operations regardless of payload size) while only
two operations scale with content:

* the per-access **DCF hash** (SHA-1 over the whole DCF), and
* the per-access **content decryption** (AES-CBC over the payload).

:func:`run_modeled` therefore executes the full protocol functionally at a
small calibration size with a single consumption, then rewrites exactly
those records to the target size and replicates the consumption phase per
access. The rewrite uses the *real* serializer on a same-shape DCF, so the
scaled trace is bit-identical to what a full functional run would record —
a property the test suite verifies at sizes where both paths are feasible.
"""

import dataclasses
from typing import Optional

from ..core.costs import CostOptions
from ..core.meter import units_128
from ..core.trace import OperationTrace, Phase
from ..drm.dcf import DCF
from .runner import ScenarioRun, run_functional
from .scenario import UseCase

#: Content size used for the functional calibration pass.
DEFAULT_CALIBRATION_OCTETS = 2048

#: Trace labels whose block counts depend on the content size.
_DCF_HASH_LABEL = "dcf-hash"
_CONTENT_DECRYPT_LABEL = "content-decrypt"


def padded_payload_octets(content_octets: int) -> int:
    """AES-CBC ciphertext size for ``content_octets`` of plaintext.

    PKCS#7 always appends at least one octet, so the ciphertext is the
    next block multiple *above* the plaintext length.
    """
    return (content_octets // 16 + 1) * 16


def dcf_octets_for_content(reference_dcf: DCF, content_octets: int) -> int:
    """Exact canonical DCF size for a same-shape DCF with new content.

    Rebuilds the reference DCF with a placeholder payload of the target
    (padded) length and measures the real serializer output — no
    hand-maintained size formula to drift out of sync.
    """
    placeholder = bytes(padded_payload_octets(content_octets))
    resized = dataclasses.replace(reference_dcf,
                                  encrypted_data=placeholder)
    return len(resized.to_bytes())


def scale_trace(trace: OperationTrace, target_dcf_octets: int,
                target_payload_octets: int,
                accesses: int) -> OperationTrace:
    """Rescale a single-access calibration trace to the target workload.

    Non-consumption records pass through (with DCF-hash blocks rewritten
    where installation verifies the DCF too); the consumption group is
    rewritten to the target sizes and multiplied by ``accesses``.
    """
    scaled = OperationTrace()
    consumption = []
    for record in trace:
        if record.label == _DCF_HASH_LABEL:
            record = dataclasses.replace(
                record, blocks=units_128(target_dcf_octets))
        elif record.label == _CONTENT_DECRYPT_LABEL:
            record = dataclasses.replace(
                record, blocks=target_payload_octets // 16)
        if record.phase is Phase.CONSUMPTION:
            consumption.append(record)
        else:
            scaled.append(record)
    for record in consumption:
        scaled.append(record.scaled(accesses))
    return scaled


def run_modeled(use_case: UseCase, seed: str = "repro-world",
                options: CostOptions = CostOptions(),
                sign_device_ros: bool = False,
                verify_dcf_on_install: bool = False,
                kdev_optimization: bool = True,
                calibration_octets: int = DEFAULT_CALIBRATION_OCTETS
                ) -> ScenarioRun:
    """Produce a paper-scale :class:`ScenarioRun` via trace rescaling.

    Functionally identical protocol execution at ``calibration_octets``
    with one consumption, then an exact rescale to
    ``use_case.content_octets`` and ``use_case.accesses``.
    """
    calibration = use_case.scaled(calibration_octets)
    run = run_functional(
        calibration, seed=seed, options=options,
        sign_device_ros=sign_device_ros,
        verify_dcf_on_install=verify_dcf_on_install,
        kdev_optimization=kdev_optimization,
        consume_times=1,
    )
    target_payload = padded_payload_octets(use_case.content_octets)
    target_dcf = dcf_octets_for_content(run.dcf, use_case.content_octets)
    trace = scale_trace(run.trace, target_dcf_octets=target_dcf,
                        target_payload_octets=target_payload,
                        accesses=use_case.accesses)
    sizes = dict(run.sizes)
    sizes["dcf"] = target_dcf
    sizes["encrypted_payload"] = target_payload
    return ScenarioRun(
        use_case=use_case, world=run.world, trace=trace, dcf=run.dcf,
        clear_content_octets=use_case.content_octets, sizes=sizes,
    )


class WorkloadScaler:
    """Amortize one calibration run across a whole parameter sweep.

    World construction (RSA key generation) costs seconds; trace rescaling
    costs microseconds. Ablation sweeps therefore run the protocol once
    and ask this scaler for as many (content size, accesses) points as
    they need.
    """

    def __init__(self, use_case: UseCase, seed: str = "repro-world",
                 options: CostOptions = CostOptions(),
                 sign_device_ros: bool = False,
                 verify_dcf_on_install: bool = False,
                 kdev_optimization: bool = True,
                 calibration_octets: int = DEFAULT_CALIBRATION_OCTETS
                 ) -> None:
        self.use_case = use_case
        calibration = use_case.scaled(calibration_octets)
        self._run = run_functional(
            calibration, seed=seed, options=options,
            sign_device_ros=sign_device_ros,
            verify_dcf_on_install=verify_dcf_on_install,
            kdev_optimization=kdev_optimization,
            consume_times=1,
        )

    @property
    def calibration_run(self) -> ScenarioRun:
        """The underlying single-access functional run."""
        return self._run

    def trace(self, content_octets: Optional[int] = None,
              accesses: Optional[int] = None) -> OperationTrace:
        """A paper-scale trace for one sweep point.

        Defaults fall back to the template use case's parameters.
        """
        if content_octets is None:
            content_octets = self.use_case.content_octets
        if accesses is None:
            accesses = self.use_case.accesses
        return scale_trace(
            self._run.trace,
            target_dcf_octets=dcf_octets_for_content(self._run.dcf,
                                                     content_octets),
            target_payload_octets=padded_payload_octets(content_octets),
            accesses=accesses,
        )


def paper_trace(use_case: UseCase, seed: str = "repro-world",
                options: CostOptions = CostOptions(),
                calibration_octets: Optional[int] = None
                ) -> OperationTrace:
    """Convenience: just the paper-scale trace for ``use_case``."""
    kwargs = {}
    if calibration_octets is not None:
        kwargs["calibration_octets"] = calibration_octets
    return run_modeled(use_case, seed=seed, options=options,
                       **kwargs).trace
