"""Named traced scenarios for ``python -m repro trace``.

Each scenario builds a fresh, fully seeded world with a
:class:`~repro.obs.tracer.Tracer` attached to the terminal's crypto
provider, drives one well-defined protocol workload, and hands back the
world — the caller reads the populated tracer (spans, events, metrics)
and the metered :class:`~repro.core.trace.OperationTrace` off it. Fresh
worlds only: the analysis layer's memoized runs must never observe a
tracer, so traced runs share nothing with them.

Scenario timestamps live on the virtual cycle timeline of the
architecture profile the tracer prices under; no wall-clock anywhere, so
the same seed always produces byte-identical exports.
"""

from typing import Callable, Dict, Tuple

from ..drm.rel import play_count
from ..drm.roap.faults import FaultPlan, FaultyChannel
from ..drm.session import RetryPolicy, RoapSession
from ..obs.tracer import Tracer
from .scenario import KIB
from .world import DRMWorld, RSA_BITS

#: Content the scenarios publish: ringtone-class, deterministic bytes.
CONTENT_ID = "cid:trace"
CONTENT_OCTETS = 30 * KIB
RO_ID = "ro:trace"

#: Loss rate the ``lossy-registration`` scenario injects.
LOSSY_RATE = 0.4

#: Accesses the ``full`` and ``durable`` scenarios perform.
FULL_ACCESSES = 3


def _seeded_world(tracer: Tracer, seed: str, rsa_bits: int,
                  **kwargs) -> Tuple[DRMWorld, object]:
    world = DRMWorld.create(seed=seed, rsa_bits=rsa_bits, tracer=tracer,
                            **kwargs)
    dcf = world.ci.publish(CONTENT_ID, "audio/mpeg",
                           b"\x5a" * CONTENT_OCTETS,
                           "http://ri.example/shop")
    world.ri.add_offer(RO_ID, world.ci.negotiate_license(CONTENT_ID),
                       play_count(1_000))
    return world, dcf


def _registration(tracer: Tracer, seed: str, rsa_bits: int) -> DRMWorld:
    world, _ = _seeded_world(tracer, seed, rsa_bits)
    world.agent.register(world.ri)
    return world


def _acquisition(tracer: Tracer, seed: str, rsa_bits: int) -> DRMWorld:
    world, _ = _seeded_world(tracer, seed, rsa_bits)
    world.agent.register(world.ri)
    world.agent.acquire(world.ri, RO_ID)
    return world


def _install(tracer: Tracer, seed: str, rsa_bits: int) -> DRMWorld:
    world, dcf = _seeded_world(tracer, seed, rsa_bits)
    world.agent.register(world.ri)
    protected = world.agent.acquire(world.ri, RO_ID)
    world.agent.install(protected, dcf)
    return world


def _consume(tracer: Tracer, seed: str, rsa_bits: int) -> DRMWorld:
    world = _install(tracer, seed, rsa_bits)
    world.agent.consume(CONTENT_ID)
    return world


def _full(tracer: Tracer, seed: str, rsa_bits: int) -> DRMWorld:
    world = _install(tracer, seed, rsa_bits)
    for _ in range(FULL_ACCESSES):
        world.agent.consume(CONTENT_ID)
    return world


def _lossy_registration(tracer: Tracer, seed: str,
                        rsa_bits: int) -> DRMWorld:
    world, _ = _seeded_world(tracer, seed, rsa_bits)
    plan = FaultPlan.lossy("%s/lossy" % seed, LOSSY_RATE)
    channel = FaultyChannel(world.ri, plan, clock=world.clock)
    session = RoapSession(world.agent, channel,
                          RetryPolicy(max_attempts=8),
                          name="%s/session" % seed)
    session.register()
    return world


def _durable(tracer: Tracer, seed: str, rsa_bits: int) -> DRMWorld:
    world, dcf = _seeded_world(tracer, seed, rsa_bits, durable=True)
    world.agent.register(world.ri)
    protected = world.agent.acquire(world.ri, RO_ID)
    world.agent.install(protected, dcf)
    for _ in range(FULL_ACCESSES):
        world.agent.consume(CONTENT_ID)
    world.agent.recover_storage()
    return world


#: Scenario name -> runner; ordering is the CLI help ordering.
SCENARIOS: Dict[str, Callable[[Tracer, str, int], DRMWorld]] = {
    "registration": _registration,
    "acquisition": _acquisition,
    "install": _install,
    "consume": _consume,
    "full": _full,
    "lossy-registration": _lossy_registration,
    "durable": _durable,
}


def run_scenario(name: str, tracer: Tracer,
                 seed: str = "repro-trace",
                 rsa_bits: int = RSA_BITS) -> DRMWorld:
    """Run one named scenario against ``tracer``; returns its world.

    Raises ``ValueError`` for unknown names so the CLI can report a
    usage error instead of a traceback.
    """
    try:
        runner = SCENARIOS[name]
    except KeyError:
        raise ValueError(
            "unknown scenario %r (expected one of %s)"
            % (name, ", ".join(sorted(SCENARIOS)))) from None
    return runner(tracer, seed, rsa_bits)
