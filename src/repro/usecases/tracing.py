"""Named traced scenarios for ``python -m repro trace``.

Each scenario builds a fresh, fully seeded world with a
:class:`~repro.obs.tracer.Tracer` attached to the terminal's crypto
provider, drives one well-defined protocol workload, and hands back the
world — the caller reads the populated tracer (spans, events, metrics)
and the metered :class:`~repro.core.trace.OperationTrace` off it. Fresh
worlds only: the analysis layer's memoized runs must never observe a
tracer, so traced runs share nothing with them.

Scenario timestamps live on the virtual cycle timeline of the
architecture profile the tracer prices under; no wall-clock anywhere, so
the same seed always produces byte-identical exports.
"""

from typing import Callable, Dict, List, Tuple

from ..core.trace import OperationTrace, Phase
from ..drm.rel import play_count
from ..drm.roap.faults import FaultPlan, FaultyChannel
from ..drm.session import RetryPolicy, RoapSession
from ..obs.tracer import Tracer
from .catalog import music_player, ringtone
from .scenario import KIB, UseCase
from .workload import run_modeled
from .world import DRMWorld, RSA_BITS

#: Content the scenarios publish: ringtone-class, deterministic bytes.
CONTENT_ID = "cid:trace"
CONTENT_OCTETS = 30 * KIB
RO_ID = "ro:trace"

#: Loss rate the ``lossy-registration`` scenario injects.
LOSSY_RATE = 0.4

#: Accesses the ``full`` and ``durable`` scenarios perform.
FULL_ACCESSES = 3


def _seeded_world(tracer: Tracer, seed: str, rsa_bits: int,
                  **kwargs) -> Tuple[DRMWorld, object]:
    world = DRMWorld.create(seed=seed, rsa_bits=rsa_bits, tracer=tracer,
                            **kwargs)
    dcf = world.ci.publish(CONTENT_ID, "audio/mpeg",
                           b"\x5a" * CONTENT_OCTETS,
                           "http://ri.example/shop")
    world.ri.add_offer(RO_ID, world.ci.negotiate_license(CONTENT_ID),
                       play_count(1_000))
    return world, dcf


def _registration(tracer: Tracer, seed: str, rsa_bits: int) -> DRMWorld:
    world, _ = _seeded_world(tracer, seed, rsa_bits)
    world.agent.register(world.ri)
    return world


def _acquisition(tracer: Tracer, seed: str, rsa_bits: int) -> DRMWorld:
    world, _ = _seeded_world(tracer, seed, rsa_bits)
    world.agent.register(world.ri)
    world.agent.acquire(world.ri, RO_ID)
    return world


def _install(tracer: Tracer, seed: str, rsa_bits: int) -> DRMWorld:
    world, dcf = _seeded_world(tracer, seed, rsa_bits)
    world.agent.register(world.ri)
    protected = world.agent.acquire(world.ri, RO_ID)
    world.agent.install(protected, dcf)
    return world


def _consume(tracer: Tracer, seed: str, rsa_bits: int) -> DRMWorld:
    world = _install(tracer, seed, rsa_bits)
    world.agent.consume(CONTENT_ID)
    return world


def _full(tracer: Tracer, seed: str, rsa_bits: int) -> DRMWorld:
    world = _install(tracer, seed, rsa_bits)
    for _ in range(FULL_ACCESSES):
        world.agent.consume(CONTENT_ID)
    return world


def _lossy_registration(tracer: Tracer, seed: str,
                        rsa_bits: int) -> DRMWorld:
    world, _ = _seeded_world(tracer, seed, rsa_bits)
    plan = FaultPlan.lossy("%s/lossy" % seed, LOSSY_RATE)
    channel = FaultyChannel(world.ri, plan, clock=world.clock)
    session = RoapSession(world.agent, channel,
                          RetryPolicy(max_attempts=8),
                          name="%s/session" % seed)
    session.register()
    return world


def _durable(tracer: Tracer, seed: str, rsa_bits: int) -> DRMWorld:
    world, dcf = _seeded_world(tracer, seed, rsa_bits, durable=True)
    world.agent.register(world.ri)
    protected = world.agent.acquire(world.ri, RO_ID)
    world.agent.install(protected, dcf)
    for _ in range(FULL_ACCESSES):
        world.agent.consume(CONTENT_ID)
    world.agent.recover_storage()
    return world


#: Scenario name -> runner; ordering is the CLI help ordering.
SCENARIOS: Dict[str, Callable[[Tracer, str, int], DRMWorld]] = {
    "registration": _registration,
    "acquisition": _acquisition,
    "install": _install,
    "consume": _consume,
    "full": _full,
    "lossy-registration": _lossy_registration,
    "durable": _durable,
}


#: Paper-scale modeled scenarios: the trace comes from the exact
#: rescaling engine (:func:`~repro.usecases.workload.run_modeled`) and
#: is *replayed* through the tracer with one structural span per
#: contiguous protocol-phase segment — full 3.5 MB Music Player
#: profiles in milliseconds instead of a functional run's minutes,
#: bit-identical in cycle attribution either way.
MODELED_SCENARIOS: Dict[str, Callable[[], UseCase]] = {
    "music": music_player,
    "ringtone": ringtone,
}

#: Every name ``run_profile_scenario`` accepts, in CLI help order.
PROFILE_SCENARIOS: Tuple[str, ...] = (tuple(SCENARIOS)
                                      + tuple(MODELED_SCENARIOS))


def replay_modeled(name: str, tracer: Tracer,
                   seed: str = "repro-trace") -> OperationTrace:
    """Replay a paper-scale modeled use case through ``tracer``.

    The modeled trace's records are priced through
    :meth:`~repro.obs.tracer.Tracer.on_record` — exactly the records
    :class:`~repro.core.model.PerformanceModel` prices — nested inside
    one structural span per contiguous phase segment, under one root
    span named after the scenario. The profiler's tree therefore
    reconciles bit-exactly with the use case's
    :class:`~repro.core.model.CostBreakdown`.
    """
    try:
        use_case = MODELED_SCENARIOS[name]()
    except KeyError:
        raise ValueError(
            "unknown modeled scenario %r (expected one of %s)"
            % (name, ", ".join(sorted(MODELED_SCENARIOS)))) from None
    run = run_modeled(use_case, seed=seed)
    segments: List[Tuple[Phase, List]] = []
    for record in run.trace:
        if not segments or segments[-1][0] is not record.phase:
            segments.append((record.phase, []))
        segments[-1][1].append(record)
    with tracer.span(name, track="modeled", use_case=use_case.name,
                     content_octets=use_case.content_octets,
                     accesses=use_case.accesses):
        for phase, records in segments:
            with tracer.span(phase.value, track=phase.value):
                for record in records:
                    tracer.on_record(record)
    return run.trace


def run_profile_scenario(name: str, tracer: Tracer,
                         seed: str = "repro-trace",
                         rsa_bits: int = RSA_BITS) -> OperationTrace:
    """Trace any profiling scenario; returns the metered trace.

    Modeled names (:data:`MODELED_SCENARIOS`) replay a rescaled
    paper-scale trace; every other name runs the real protocol stack
    via :func:`run_scenario`. Either way the returned
    :class:`~repro.core.trace.OperationTrace` prices to exactly the
    cycles the tracer recorded.
    """
    if name in MODELED_SCENARIOS:
        return replay_modeled(name, tracer, seed=seed)
    world = run_scenario(name, tracer, seed=seed, rsa_bits=rsa_bits)
    return world.agent_crypto.trace


def run_scenario(name: str, tracer: Tracer,
                 seed: str = "repro-trace",
                 rsa_bits: int = RSA_BITS) -> DRMWorld:
    """Run one named scenario against ``tracer``; returns its world.

    Raises ``ValueError`` for unknown names so the CLI can report a
    usage error instead of a traceback.
    """
    try:
        runner = SCENARIOS[name]
    except KeyError:
        raise ValueError(
            "unknown scenario %r (expected one of %s)"
            % (name, ", ".join(sorted(SCENARIOS)))) from None
    return runner(tracer, seed, rsa_bits)
