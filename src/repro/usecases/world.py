"""World construction: wire up the full actor constellation of Figure 1.

A :class:`DRMWorld` contains one Certification Authority with an OCSP
responder, one Rights Issuer, one Content Issuer and one terminal (DRM
Agent). Only the agent's crypto provider is metered — the paper prices
the *terminal's* processing, never the servers'.

All randomness derives from one seed string, so every world (keys,
nonces, IVs, message bytes) is fully reproducible.
"""

from dataclasses import dataclass
from typing import Optional

from ..core.costs import CostOptions
from ..core.meter import MeteredCrypto, PlainCrypto
from ..crypto.rng import HmacDrbg
from ..crypto.rsa import generate_keypair
from ..drm.agent import DRMAgent
from ..drm.certificates import CertificationAuthority
from ..drm.clock import SimulationClock
from ..drm.content_issuer import ContentIssuer
from ..drm.identifiers import device_id, rights_issuer_id
from ..drm.ocsp import OCSPResponder
from ..drm.rights_issuer import RightsIssuer

#: RSA modulus size mandated by OMA DRM 2 (paper §2.4.5).
RSA_BITS = 1024


@dataclass
class DRMWorld:
    """One complete, wired-up OMA DRM 2 deployment.

    ``seed`` is retained so every stream of randomness the world ever
    derives — including late :meth:`add_device` provisioning — is a pure
    function of it. Nothing here is module-level: two worlds never share
    a DRBG, a clock or any other mutable state, so worlds built inside
    fork- or spawn-started worker processes cannot alias each other.
    """

    seed: str
    clock: SimulationClock
    ca: CertificationAuthority
    ocsp: OCSPResponder
    ri: RightsIssuer
    ci: ContentIssuer
    agent: DRMAgent
    agent_crypto: PlainCrypto

    @classmethod
    def create(cls, seed: str = "repro-world", metered: bool = True,
               options: CostOptions = CostOptions(),
               sign_device_ros: bool = False,
               verify_dcf_on_install: bool = False,
               kdev_optimization: bool = True,
               rsa_bits: int = RSA_BITS,
               clock: Optional[SimulationClock] = None,
               durable: bool = False,
               storage_injector=None,
               tracer=None) -> "DRMWorld":
        """Build a deterministic world from ``seed``.

        ``metered=True`` gives the agent a :class:`MeteredCrypto` provider
        whose trace the caller can price; servers always run un-metered.
        ``rsa_bits`` can be lowered (e.g. to 512) to speed up unit tests
        that don't depend on the 1024-bit default. ``durable=True`` puts
        the agent on journaled power-loss-atomic storage
        (:mod:`repro.store`); the journal's HMAC framing then shows up in
        the metered trace, which is why the paper-baseline default stays
        volatile. ``storage_injector`` optionally arms a
        :class:`~repro.store.crash.CrashInjector` under that journal.
        ``tracer`` optionally attaches a :class:`~repro.obs.tracer.Tracer`
        to the agent's provider — spans/events then cover the terminal's
        work on the virtual cycle timeline; the default null tracer
        changes nothing.
        """
        clock = clock if clock is not None else SimulationClock()
        server_crypto = PlainCrypto(HmacDrbg((seed + "/server").encode()))
        if metered:
            agent_crypto: PlainCrypto = MeteredCrypto(
                HmacDrbg((seed + "/agent").encode()), options=options,
                tracer=tracer)
        else:
            agent_crypto = PlainCrypto(
                HmacDrbg((seed + "/agent").encode()), tracer=tracer)

        ca_keys = generate_keypair(rsa_bits, server_crypto.rng)
        ca = CertificationAuthority("cmla-root", ca_keys, server_crypto,
                                    now=clock.now)
        ocsp_keys = generate_keypair(rsa_bits, server_crypto.rng)
        ocsp = OCSPResponder("cmla-ocsp", ca, ocsp_keys, server_crypto,
                             now=clock.now)

        ri_keys = generate_keypair(rsa_bits, server_crypto.rng)
        ri = RightsIssuer(
            ri_id=rights_issuer_id("acme-media"), keypair=ri_keys, ca=ca,
            ocsp_responder=ocsp, crypto=server_crypto, clock=clock,
            sign_device_ros=sign_device_ros,
        )
        ci = ContentIssuer("bigtunes", server_crypto)

        agent_keys = generate_keypair(rsa_bits, agent_crypto.rng)
        agent_id = device_id("terminal-1")
        agent_cert = ca.issue(agent_id, agent_keys.public_key, clock.now)
        # Trust anchors provisioned at manufacture: the CA root and the
        # OCSP responder certificate (so OCSP checks cost exactly one
        # public-key operation, as in the paper's phase accounting).
        agent = DRMAgent(
            device_id=agent_id, keypair=agent_keys,
            certificate=agent_cert,
            trust_anchors=[ca.root_certificate, ocsp.certificate],
            crypto=agent_crypto, clock=clock,
            verify_dcf_on_install=verify_dcf_on_install,
            kdev_optimization=kdev_optimization,
            durable=durable, storage_injector=storage_injector,
        )
        return cls(seed=seed, clock=clock, ca=ca, ocsp=ocsp, ri=ri,
                   ci=ci, agent=agent, agent_crypto=agent_crypto)

    def add_device(self, name: str, metered: bool = False,
                   clock_skew_seconds: int = 0,
                   rsa_bits: Optional[int] = None) -> DRMAgent:
        """Provision another terminal into this world.

        The new device gets its own keys, a certificate from this
        world's CA, and the same provisioned trust anchors — the
        multi-device setup domain scenarios need. ``metered=True`` gives
        it its own independent cost trace.
        """
        if rsa_bits is None:
            rsa_bits = self.agent.secure.device_private_key.modulus_bits
        # Derive from the *world* seed, not the bare device name: two
        # worlds with different seeds must never hand identical key
        # streams to same-named devices (the aliasing hazard a sharded
        # simulation would otherwise inherit).
        seed = (self.seed + "/device/" + name).encode()
        crypto: PlainCrypto = (MeteredCrypto(HmacDrbg(seed)) if metered
                               else PlainCrypto(HmacDrbg(seed)))
        keys = generate_keypair(rsa_bits, crypto.rng)
        identity = device_id(name)
        certificate = self.ca.issue(identity, keys.public_key,
                                    self.clock.now)
        return DRMAgent(
            device_id=identity, keypair=keys, certificate=certificate,
            trust_anchors=list(self.agent.trust_anchors),
            crypto=crypto, clock=self.clock,
            clock_skew_seconds=clock_skew_seconds,
        )
