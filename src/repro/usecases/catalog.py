"""The paper's two evaluation use cases (§4) plus small test variants.

* **Music Player** — a 3.5 MB encrypted track; register, acquire, install,
  then listen five times.
* **Ringtone** — a 30 KB high-quality polyphonic ringtone; register,
  acquire, install, then the phone rings 25 times and the DRM Agent must
  unlock the file on every ring.

"The two use cases differ mainly in the size of the encrypted file and in
the number of playbacks" — which is exactly what flips the dominant cost
from PKI (Ringtone) to bulk AES/SHA-1 (Music Player)."""

from .scenario import KIB, MIB, UseCase

#: Paper parameters: 3.5 Mbytes, five listens.
MUSIC_CONTENT_OCTETS = int(3.5 * MIB)
MUSIC_ACCESSES = 5

#: Paper parameters: 30 Kbytes, 25 calls.
RINGTONE_CONTENT_OCTETS = 30 * KIB
RINGTONE_ACCESSES = 25


def music_player() -> UseCase:
    """The Music Player use case at paper scale."""
    return UseCase(
        name="Music Player",
        content_octets=MUSIC_CONTENT_OCTETS,
        accesses=MUSIC_ACCESSES,
        content_type="audio/mpeg",
        metadata={"title": "Track 01", "author": "Example Artist"},
    )


def ringtone() -> UseCase:
    """The Ringtone use case at paper scale."""
    return UseCase(
        name="Ringtone",
        content_octets=RINGTONE_CONTENT_OCTETS,
        accesses=RINGTONE_ACCESSES,
        content_type="audio/midi",
        metadata={"title": "Polyphonic Ring 7", "author": "Tone Factory"},
    )


def paper_use_cases() -> tuple:
    """Both paper workloads, in Figure 5's plotting order."""
    return (ringtone(), music_player())
