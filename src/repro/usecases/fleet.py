"""Fleet-scale workload engine: many devices, one Rights Issuer.

The paper prices *one* terminal's consumption process. This module asks
the operator-side question: what does a Rights Issuer serving 10^4-10^6
devices cost — per SoC architecture, per phase, on the wire — when every
device runs its own deterministically-drawn scenario mix?

Executing a million functional protocol runs is out of the question
(each world costs seconds of RSA key generation), and is also
unnecessary: the cost model is a pure function of a handful of drawn
parameters. The engine therefore splits the work in two:

* **Templates** (:func:`build_cost_templates`) — ONE metered functional
  run per fleet seed prices the protocol phases under every architecture
  profile, and one wire-logged run measures per-flow octets and RI
  request counts. Per-access costs are pre-priced for every content-size
  bucket in the scenario grid via exact trace rescaling
  (:mod:`repro.usecases.workload`).
* **Population** — each device ``i`` derives an independent RNG from
  ``(fleet seed, i)`` and draws its scenario: a family from the mix
  (ringtone-like, album-track-like, ...), a content-size bucket, an
  access count, an arrival slot, and — on lossy bearers — a bounded
  geometric retry count per ROAP flow. Device cost is then integer
  arithmetic over the templates.

**Sharding determinism contract.** The population is cut into fixed-size
shards (``shard_size``, independent of worker count); each shard folds
its devices into a :class:`FleetAccumulator` (O(1) memory per shard, see
:mod:`repro.core.stats`), and shard accumulators merge exactly. Device
draws depend only on ``(seed, device index)``, shard decomposition
depends only on ``(devices, shard_size)``, and every accumulator is
integer-valued — so results are bit-identical for ANY ``workers`` value,
including 1. Worker processes receive their entire state (config,
templates, shard bounds) explicitly through the pool call; they consult
no module-level mutable state, so fork- and spawn-started pools behave
identically.
"""

import multiprocessing
import random
from collections import Counter
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Optional, Tuple

from ..core.architecture import PAPER_PROFILES
from ..core.energy import DEFAULT_CPU_POWER_WATTS
from ..core.model import PerformanceModel
from ..core.stats import StatsSummary, StreamingStats
from ..core.trace import Phase
from ..drm.roap.wire import WireChannel
from ..drm.rel import play_count
from ..obs.metrics import MetricsRegistry, merge_registries
from .catalog import ringtone
from .durability import DurabilityTemplates, build_durability_templates
from .runner import run_functional
from .scenario import KIB, MIB
from .workload import (DEFAULT_CALIBRATION_OCTETS, dcf_octets_for_content,
                       padded_payload_octets, scale_trace)
from .world import RSA_BITS, DRMWorld

#: Transmissions per 4-pass registration attempt (paper Figure 2).
REGISTRATION_TRANSMISSIONS = 4

#: Transmissions per 2-pass RO acquisition attempt.
ACQUISITION_TRANSMISSIONS = 2

#: Device->RI requests per registration attempt (DeviceHello, RegRequest).
REGISTRATION_REQUESTS = 2

#: Device->RI requests per acquisition attempt (RORequest).
ACQUISITION_REQUESTS = 1


@dataclass(frozen=True)
class ScenarioFamily:
    """One strand of the fleet's scenario mix.

    Devices of this family draw uniformly from the discrete
    ``content_octets_choices`` and ``accesses_choices`` grids. Keeping
    the grids discrete bounds the number of distinct per-device costs,
    which is what keeps the exact percentile accumulators small.
    """

    name: str
    weight: float
    content_octets_choices: Tuple[int, ...]
    accesses_choices: Tuple[int, ...]

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError("family weight must be positive")
        if not self.content_octets_choices or not self.accesses_choices:
            raise ValueError("family grids must be non-empty")


#: Default mix: mostly ringtone-class flows, a tail of bulk audio.
DEFAULT_FAMILIES = (
    ScenarioFamily("ringtone", 0.55,
                   (15 * KIB, 30 * KIB, 60 * KIB), (5, 10, 25)),
    ScenarioFamily("track", 0.35,
                   (1 * MIB, int(3.5 * MIB), 5 * MIB), (1, 3, 5)),
    ScenarioFamily("audiobook", 0.10,
                   (16 * MIB, 32 * MIB), (1, 2)),
)

#: Supported arrival distributions over the observation window.
ARRIVAL_MODELS = ("uniform", "peaked")


@dataclass(frozen=True)
class FleetConfig:
    """Everything that determines a fleet run, and nothing else.

    A :class:`FleetConfig` plus a device index fully determines that
    device's draws; a config alone fully determines the aggregate result.
    """

    devices: int = 10_000
    seed: str = "repro-fleet"
    families: Tuple[ScenarioFamily, ...] = DEFAULT_FAMILIES
    arrival_model: str = "uniform"
    window_seconds: int = 3600
    arrival_bins: int = 60
    lossy_fraction: float = 0.2
    loss_rate: float = 0.1
    max_attempts: int = 5
    shard_size: int = 25_000
    rsa_bits: int = RSA_BITS
    calibration_octets: int = DEFAULT_CALIBRATION_OCTETS
    journaled: bool = False
    crash_rate: float = 0.0
    #: Fraction of devices behind a persistent active man-in-the-middle
    #: (see :mod:`repro.adversary`): their ROAP flows never complete,
    #: and the session's forgery cut-off bounds the crypto each one
    #: wastes at ``breaker_cutoff`` attempts instead of the full retry
    #: budget.
    adversary_fraction: float = 0.0
    breaker_cutoff: int = 2

    def __post_init__(self) -> None:
        if self.devices < 1:
            raise ValueError("a fleet needs at least one device")
        if self.arrival_model not in ARRIVAL_MODELS:
            raise ValueError("unknown arrival model %r (expected one of "
                             "%s)" % (self.arrival_model,
                                      ", ".join(ARRIVAL_MODELS)))
        if not 0.0 <= self.lossy_fraction <= 1.0:
            raise ValueError("lossy fraction must be within [0, 1]")
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError("loss rate must be within [0, 1)")
        if self.max_attempts < 1:
            raise ValueError("at least one attempt is required")
        if self.shard_size < 1:
            raise ValueError("shard size must be positive")
        if self.window_seconds < 1 or self.arrival_bins < 1:
            raise ValueError("window and bins must be positive")
        if not 0.0 <= self.crash_rate <= 1.0:
            raise ValueError("crash rate must be within [0, 1]")
        if self.crash_rate > 0.0 and not self.journaled:
            raise ValueError("crash modeling requires journaled "
                             "storage (set journaled=True)")
        if not 0.0 <= self.adversary_fraction <= 1.0:
            raise ValueError("adversary fraction must be within [0, 1]")
        if self.breaker_cutoff < 2:
            raise ValueError("the forgery cut-off needs at least two "
                             "observations")

    def size_buckets(self) -> Tuple[int, ...]:
        """All distinct content sizes any device can draw, sorted."""
        sizes = set()
        for family in self.families:
            sizes.update(family.content_octets_choices)
        return tuple(sorted(sizes))

    def shards(self) -> List[Tuple[int, int]]:
        """Fixed (start, count) decomposition — worker-count independent."""
        return [(start, min(self.shard_size, self.devices - start))
                for start in range(0, self.devices, self.shard_size)]


@dataclass(frozen=True)
class CostTemplates:
    """Pre-priced protocol costs every simulated device is built from.

    Plain dicts of ints keyed by architecture name / size bucket: the
    whole object pickles cheaply across the pool boundary, and workers
    never need a world, an RNG, or any other stateful object.
    """

    registration_cycles: Dict[str, int]
    acquisition_cycles: Dict[str, int]
    installation_cycles: Dict[str, int]
    access_cycles: Dict[int, Dict[str, int]]
    registration_octets: int
    acquisition_octets: int
    #: Journal/recovery pricing; None unless the fleet is journaled.
    durability: Optional[DurabilityTemplates] = None


def build_cost_templates(config: FleetConfig) -> CostTemplates:
    """Price the per-flow templates with one calibration run per seed.

    A metered functional ringtone-class run at calibration scale yields
    the phase traces; exact rescaling prices a single access at every
    size bucket in the mix. A second, wire-logged world measures the
    octets each ROAP flow moves. Memoized on exactly the parameters the
    templates depend on, so population-size sweeps pay for the RSA key
    generation once.
    """
    return _cached_templates(config.seed, config.rsa_bits,
                             config.calibration_octets,
                             config.size_buckets(), config.journaled)


@lru_cache(maxsize=8)
def _cached_templates(seed: str, rsa_bits: int, calibration_octets: int,
                      size_buckets: Tuple[int, ...],
                      journaled: bool = False) -> CostTemplates:
    world = DRMWorld.create(seed=seed + "/templates", metered=True,
                            rsa_bits=rsa_bits)
    calibration = ringtone().scaled(calibration_octets, accesses=1)
    run = run_functional(calibration, consume_times=1, world=world)

    model = PerformanceModel()
    phase_cycles: Dict[Phase, Dict[str, int]] = {}
    for phase in (Phase.REGISTRATION, Phase.ACQUISITION,
                  Phase.INSTALLATION):
        sub = run.trace.filter(phase=phase)
        phase_cycles[phase] = {
            profile.name: model.evaluate(sub, profile).total_cycles
            for profile in PAPER_PROFILES
        }

    access_cycles: Dict[int, Dict[str, int]] = {}
    for size in size_buckets:
        scaled = scale_trace(
            run.trace,
            target_dcf_octets=dcf_octets_for_content(run.dcf, size),
            target_payload_octets=padded_payload_octets(size),
            accesses=1,
        ).filter(phase=Phase.CONSUMPTION)
        access_cycles[size] = {
            profile.name: model.evaluate(scaled, profile).total_cycles
            for profile in PAPER_PROFILES
        }

    wire_world = DRMWorld.create(seed=seed + "/wire", metered=False,
                                 rsa_bits=rsa_bits)
    channel = WireChannel(wire_world.ri)
    wire_world.ci.publish("cid:fleet", "audio/mpeg", b"\x00" * 1024,
                          "http://ri.example/shop")
    wire_world.ri.add_offer(
        "ro:fleet", wire_world.ci.negotiate_license("cid:fleet"),
        play_count(1))
    wire_world.agent.register(channel)
    registration_octets = channel.log.total_octets()
    wire_world.agent.acquire(channel, "ro:fleet")
    acquisition_octets = (channel.log.total_octets()
                          - registration_octets)

    durability = None
    if journaled:
        durability = build_durability_templates(
            seed, rsa_bits=rsa_bits,
            calibration_octets=calibration_octets)

    return CostTemplates(
        registration_cycles=phase_cycles[Phase.REGISTRATION],
        acquisition_cycles=phase_cycles[Phase.ACQUISITION],
        installation_cycles=phase_cycles[Phase.INSTALLATION],
        access_cycles=access_cycles,
        registration_octets=registration_octets,
        acquisition_octets=acquisition_octets,
        durability=durability,
    )


@dataclass(frozen=True)
class DeviceDraw:
    """The scenario one device drew — exposed for tests and debugging."""

    index: int
    family: str
    content_octets: int
    accesses: int
    arrival_bin: int
    lossy: bool
    registration_attempts: int
    registered: bool
    acquisition_attempts: int
    acquired: bool
    #: Whether the device lost power once during its access sequence,
    #: and after how many completed accesses (journal depth at reboot).
    crashed: bool = False
    crash_point: int = 0
    #: Whether this device sits behind a persistent active attacker (its
    #: flows then abort at the forgery cut-off, never completing).
    attacked: bool = False


def _attempt_success_probability(loss_rate: float,
                                 transmissions: int) -> float:
    return (1.0 - loss_rate) ** transmissions


def _draw_attempts(rng: random.Random, success_probability: float,
                   max_attempts: int) -> Tuple[int, bool]:
    """Bounded-geometric attempt count and whether the flow completed."""
    for attempt in range(1, max_attempts + 1):
        if rng.random() < success_probability:
            return attempt, True
    return max_attempts, False


def draw_device(config: FleetConfig, index: int) -> DeviceDraw:
    """Deterministically draw device ``index``'s scenario.

    The draw order below is a compatibility contract: re-ordering it
    changes every seeded fleet result. Each device's RNG derives from
    ``(seed, index)`` alone, so draws are independent of sharding,
    worker count and start method.
    """
    rng = random.Random("%s/device/%d" % (config.seed, index))

    pick = rng.random() * sum(f.weight for f in config.families)
    family = config.families[-1]
    for candidate in config.families:
        pick -= candidate.weight
        if pick < 0.0:
            family = candidate
            break
    content_octets = rng.choice(family.content_octets_choices)
    accesses = rng.choice(family.accesses_choices)

    if config.arrival_model == "uniform":
        arrival_bin = rng.randrange(config.arrival_bins)
    else:  # "peaked": triangular ramp with the mode mid-window
        arrival_bin = min(config.arrival_bins - 1,
                          int(rng.triangular(0, config.arrival_bins,
                                             config.arrival_bins / 2)))

    lossy = rng.random() < config.lossy_fraction
    if lossy:
        reg_attempts, registered = _draw_attempts(
            rng, _attempt_success_probability(
                config.loss_rate, REGISTRATION_TRANSMISSIONS),
            config.max_attempts)
        if registered:
            acq_attempts, acquired = _draw_attempts(
                rng, _attempt_success_probability(
                    config.loss_rate, ACQUISITION_TRANSMISSIONS),
                config.max_attempts)
        else:
            acq_attempts, acquired = 0, False
    else:
        reg_attempts, registered = 1, True
        acq_attempts, acquired = 1, True

    # Crash draws come last, gated on crash_rate: a crash-free config
    # consumes the identical random stream as before this draw existed,
    # so historical seeded results stay bit-identical.
    crashed, crash_point = False, 0
    if config.crash_rate > 0.0 and acquired:
        crashed = rng.random() < config.crash_rate
        if crashed:
            crash_point = rng.randrange(accesses + 1)

    # Adversary draws are likewise gated on their enabling parameter:
    # attack-free configs consume the identical random stream as before
    # this draw existed. An attacked device faces a persistent forging
    # man-in-the-middle: its registration aborts at the session layer's
    # forgery cut-off (identical trust failures), so it spends exactly
    # ``breaker_cutoff`` priced attempts instead of the full retry
    # budget, and nothing downstream of registration ever happens.
    attacked = False
    if config.adversary_fraction > 0.0:
        attacked = rng.random() < config.adversary_fraction
        if attacked:
            reg_attempts = min(config.breaker_cutoff,
                               config.max_attempts)
            registered = False
            acq_attempts, acquired = 0, False
            crashed, crash_point = False, 0

    return DeviceDraw(
        index=index, family=family.name, content_octets=content_octets,
        accesses=accesses, arrival_bin=arrival_bin, lossy=lossy,
        registration_attempts=reg_attempts, registered=registered,
        acquisition_attempts=acq_attempts, acquired=acquired,
        crashed=crashed, crash_point=crash_point, attacked=attacked,
    )


@dataclass
class FleetAccumulator:
    """Mergeable aggregate of any subset of the fleet.

    Strictly integer-valued, so merges are exact and order-independent;
    see the sharding determinism contract in the module docstring.
    """

    cycles: Dict[str, StreamingStats] = field(default_factory=dict)
    octets: StreamingStats = field(default_factory=StreamingStats)
    arrival_requests: Dict[int, int] = field(default_factory=dict)
    family_devices: Dict[str, int] = field(default_factory=dict)
    devices: int = 0
    requests: int = 0
    retries: int = 0
    failed_registrations: int = 0
    failed_acquisitions: int = 0
    accesses: int = 0
    recoveries: int = 0
    recovery_records: int = 0
    attacked_devices: int = 0

    def observe(self, draw: DeviceDraw, config: FleetConfig,
                templates: CostTemplates) -> None:
        """Fold one device into the aggregate."""
        requests = draw.registration_attempts * REGISTRATION_REQUESTS
        octets = (draw.registration_attempts
                  * templates.registration_octets)
        retries = draw.registration_attempts - 1
        if draw.registered:
            requests += draw.acquisition_attempts * ACQUISITION_REQUESTS
            octets += (draw.acquisition_attempts
                       * templates.acquisition_octets)
            retries += draw.acquisition_attempts - 1

        durability = templates.durability
        replayed = 0
        if draw.crashed and durability is not None:
            # Journal depth when power died: everything written up to
            # the crash point (registration, install, completed
            # accesses) is what the reboot replay has to scan.
            replayed = (durability.registration_records
                        + durability.install_records
                        + draw.crash_point * durability.access_records)

        per_access = templates.access_cycles[draw.content_octets]
        for profile in PAPER_PROFILES:
            name = profile.name
            total = (draw.registration_attempts
                     * templates.registration_cycles[name])
            if draw.registered:
                total += (draw.acquisition_attempts
                          * templates.acquisition_cycles[name])
            if draw.acquired:
                total += templates.installation_cycles[name]
                total += draw.accesses * per_access[name]
            if durability is not None:
                total += (draw.registration_attempts
                          * durability.registration_overhead_cycles[name])
                if draw.acquired:
                    total += durability.installation_overhead_cycles[name]
                    total += (draw.accesses
                              * durability.access_overhead_cycles[name])
                total += durability.recovery_cycles_for(name, replayed)
            if name not in self.cycles:
                self.cycles[name] = StreamingStats()
            self.cycles[name].add(total)

        self.octets.add(octets)
        self.arrival_requests[draw.arrival_bin] = (
            self.arrival_requests.get(draw.arrival_bin, 0) + requests)
        self.family_devices[draw.family] = (
            self.family_devices.get(draw.family, 0) + 1)
        self.devices += 1
        self.requests += requests
        self.retries += retries
        self.failed_registrations += int(not draw.registered)
        self.failed_acquisitions += int(draw.registered
                                        and not draw.acquired)
        self.accesses += draw.accesses if draw.acquired else 0
        self.recoveries += int(draw.crashed)
        self.recovery_records += replayed
        self.attacked_devices += int(draw.attacked)

    def merge(self, other: "FleetAccumulator") -> "FleetAccumulator":
        """Exact union (associative and commutative)."""
        cycles = {name: stats.merge(StreamingStats())
                  for name, stats in self.cycles.items()}
        for name, stats in other.cycles.items():
            cycles[name] = cycles.get(name, StreamingStats()).merge(stats)
        arrivals = dict(self.arrival_requests)
        for bin_index, count in other.arrival_requests.items():
            arrivals[bin_index] = arrivals.get(bin_index, 0) + count
        families = dict(self.family_devices)
        for name, count in other.family_devices.items():
            families[name] = families.get(name, 0) + count
        return FleetAccumulator(
            cycles=cycles,
            octets=self.octets.merge(other.octets),
            arrival_requests=arrivals,
            family_devices=families,
            devices=self.devices + other.devices,
            requests=self.requests + other.requests,
            retries=self.retries + other.retries,
            failed_registrations=(self.failed_registrations
                                  + other.failed_registrations),
            failed_acquisitions=(self.failed_acquisitions
                                 + other.failed_acquisitions),
            accesses=self.accesses + other.accesses,
            recoveries=self.recoveries + other.recoveries,
            recovery_records=(self.recovery_records
                              + other.recovery_records),
            attacked_devices=(self.attacked_devices
                              + other.attacked_devices),
        )

    def metrics(self) -> MetricsRegistry:
        """This aggregate as a :class:`~repro.obs.metrics.MetricsRegistry`.

        The mapping is linear in the accumulator (counters sum,
        histograms union), so registries built per shard and merged
        equal the registry of the merged accumulator — the fleet's
        bit-identical-for-any-worker-count contract carries over to the
        metrics export unchanged.
        """
        registry = MetricsRegistry()
        registry.counter("fleet.devices", self.devices)
        registry.counter("fleet.requests", self.requests)
        registry.counter("fleet.retries", self.retries)
        registry.counter("fleet.failed_registrations",
                         self.failed_registrations)
        registry.counter("fleet.failed_acquisitions",
                         self.failed_acquisitions)
        registry.counter("fleet.accesses", self.accesses)
        registry.counter("fleet.recoveries", self.recoveries)
        registry.counter("fleet.recovery_records", self.recovery_records)
        registry.counter("fleet.attacked_devices", self.attacked_devices)
        for family in sorted(self.family_devices):
            registry.counter("fleet.family.%s" % family,
                             self.family_devices[family])
        for bin_index in sorted(self.arrival_requests):
            registry.counter("fleet.arrivals.bin.%03d" % bin_index,
                             self.arrival_requests[bin_index])
        registry.histograms["fleet.octets"] = StreamingStats(
            counts=Counter(self.octets.counts))
        for name in sorted(self.cycles):
            registry.histograms["fleet.cycles.%s" % name] = \
                StreamingStats(counts=Counter(self.cycles[name].counts))
        return registry

    def peak_request_bin(self) -> Tuple[Optional[int], int]:
        """(bin index, requests) of the busiest arrival slot."""
        if not self.arrival_requests:
            return None, 0
        bin_index = max(sorted(self.arrival_requests),
                        key=lambda b: self.arrival_requests[b])
        return bin_index, self.arrival_requests[bin_index]


def _run_shard(spec: Tuple[FleetConfig, CostTemplates,
                           int, int]) -> FleetAccumulator:
    """Simulate one shard. Pure function of its argument tuple.

    This is the pool worker: everything it reads arrives in ``spec``,
    everything it produces leaves in the returned accumulator. It runs
    identically inline, under fork, and under spawn.
    """
    config, templates, start, count = spec
    accumulator = FleetAccumulator()
    for index in range(start, start + count):
        accumulator.observe(draw_device(config, index), config,
                            templates)
    return accumulator


@dataclass
class ArchitectureFleetSummary:
    """Per-architecture fleet cost statistics, cycles plus conversions."""

    architecture: str
    cycles: StatsSummary
    ms_per_cycle: float
    millijoules_per_cycle: float

    @property
    def total_ms(self) -> float:
        """Fleet-wide processing time in milliseconds."""
        return self.cycles.total * self.ms_per_cycle

    @property
    def mean_ms(self) -> float:
        """Mean per-device processing time in milliseconds."""
        return self.cycles.mean * self.ms_per_cycle

    @property
    def total_millijoules(self) -> float:
        """Fleet-wide terminal energy in millijoules."""
        return self.cycles.total * self.millijoules_per_cycle

    def percentile_ms(self, which: str) -> float:
        """One of 'p50'/'p95'/'p99' converted to milliseconds."""
        return (getattr(self.cycles, which) or 0) * self.ms_per_cycle


@dataclass
class FleetResult:
    """One completed fleet simulation."""

    config: FleetConfig
    templates: CostTemplates
    accumulator: FleetAccumulator
    workers: int
    #: Per-shard registries merged in shard order; equals the merged
    #: accumulator's own :meth:`FleetAccumulator.metrics` exactly.
    metrics: Optional[MetricsRegistry] = None

    def architecture_summaries(self) -> List[ArchitectureFleetSummary]:
        """Cycle statistics per paper architecture, in plot order."""
        summaries = []
        for profile in PAPER_PROFILES:
            stats = self.accumulator.cycles.get(profile.name,
                                                StreamingStats())
            ms_per_cycle = profile.cycles_to_ms(1)
            mj_per_cycle = (1000.0 * DEFAULT_CPU_POWER_WATTS
                            / profile.clock_hz)
            summaries.append(ArchitectureFleetSummary(
                architecture=profile.name, cycles=stats.summary(),
                ms_per_cycle=ms_per_cycle,
                millijoules_per_cycle=mj_per_cycle,
            ))
        return summaries

    def mean_request_rate(self) -> float:
        """RI requests per second, averaged over the arrival window."""
        return self.accumulator.requests / self.config.window_seconds

    def peak_request_rate(self) -> float:
        """RI requests per second in the busiest arrival bin."""
        _, peak = self.accumulator.peak_request_bin()
        bin_seconds = (self.config.window_seconds
                       / self.config.arrival_bins)
        return peak / bin_seconds

    def retry_request_fraction(self) -> float:
        """Share of RI load that exists only because of retries."""
        if not self.accumulator.requests:
            return 0.0
        retry_requests = (self.accumulator.requests
                          - self.accumulator.devices
                          * REGISTRATION_REQUESTS
                          - (self.accumulator.devices
                             - self.accumulator.failed_registrations)
                          * ACQUISITION_REQUESTS)
        return retry_requests / self.accumulator.requests


def run_fleet(config: FleetConfig, workers: int = 1,
              templates: Optional[CostTemplates] = None) -> FleetResult:
    """Simulate the whole fleet and return its aggregate statistics.

    ``workers > 1`` distributes the fixed shard list over a process
    pool; any worker count yields bit-identical results. ``templates``
    may be passed in to amortize the calibration run across sweeps.
    """
    if workers < 1:
        raise ValueError("at least one worker is required")
    if templates is None:
        templates = build_cost_templates(config)
    specs = [(config, templates, start, count)
             for start, count in config.shards()]

    if workers == 1 or len(specs) == 1:
        shard_results = [_run_shard(spec) for spec in specs]
    else:
        with multiprocessing.Pool(processes=min(workers,
                                                len(specs))) as pool:
            shard_results = pool.map(_run_shard, specs)

    accumulator = FleetAccumulator()
    for shard in shard_results:
        accumulator = accumulator.merge(shard)
    metrics = merge_registries(shard.metrics()
                               for shard in shard_results)
    return FleetResult(config=config, templates=templates,
                       accumulator=accumulator, workers=workers,
                       metrics=metrics)
