"""Use-case descriptions — the paper's evaluation workloads (§4).

A :class:`UseCase` is everything the end-to-end runner needs: content
size and type, number of accesses, and the rights grant. The two paper
workloads live in :mod:`repro.usecases.catalog`; custom ones are a
constructor call away.
"""

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..drm.rel import Rights, play_count

#: 1 KiB / 1 MiB in octets.
KIB = 1024
MIB = 1024 * KIB


@dataclass(frozen=True)
class UseCase:
    """One evaluation workload.

    ``accesses`` counts content consumptions after install (5 listens for
    the Music Player, 25 ring events for the Ringtone). ``rights`` default
    to a play-count grant matching ``accesses`` so the REL state machine
    is exercised to exhaustion.
    """

    name: str
    content_octets: int
    accesses: int
    content_type: str = "application/octet-stream"
    rights: Optional[Rights] = None
    metadata: Dict[str, str] = field(default_factory=dict)
    domain: bool = False

    def __post_init__(self) -> None:
        if self.content_octets <= 0:
            raise ValueError("content size must be positive")
        if self.accesses < 0:
            raise ValueError("access count must be non-negative")

    def effective_rights(self) -> Rights:
        """The rights grant to mint into the RO."""
        if self.rights is not None:
            return self.rights
        return play_count(max(self.accesses, 1))

    def scaled(self, content_octets: int,
               accesses: Optional[int] = None) -> "UseCase":
        """A copy with a different content size (and optionally accesses).

        Used to run the functional model at laptop-friendly sizes while
        the workload scaler restores paper-scale numbers in the trace.
        """
        return UseCase(
            name=self.name,
            content_octets=content_octets,
            accesses=self.accesses if accesses is None else accesses,
            content_type=self.content_type,
            rights=self.rights,
            metadata=dict(self.metadata),
            domain=self.domain,
        )
