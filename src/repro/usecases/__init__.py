"""Evaluation use cases: world building, scenario running, trace scaling.

* :mod:`~repro.usecases.world` — wire up the Figure 1 actor constellation
* :mod:`~repro.usecases.scenario` / :mod:`~repro.usecases.catalog` —
  workload descriptions (Music Player, Ringtone)
* :mod:`~repro.usecases.runner` — functional end-to-end execution
* :mod:`~repro.usecases.workload` — exact rescaling to paper-scale traces
* :mod:`~repro.usecases.fleet` — sharded large-population simulation
* :mod:`~repro.usecases.durability` — priced write-ahead journal overhead
"""

from .catalog import (MUSIC_ACCESSES, MUSIC_CONTENT_OCTETS,
                      RINGTONE_ACCESSES, RINGTONE_CONTENT_OCTETS,
                      music_player, paper_use_cases, ringtone)
from .durability import (DurabilityMeasurement, DurabilityTemplates,
                         build_durability_templates, measure_durability)
from .fleet import (DEFAULT_FAMILIES, CostTemplates, DeviceDraw,
                    FleetAccumulator, FleetConfig, FleetResult,
                    ScenarioFamily, build_cost_templates, draw_device,
                    run_fleet)
from .runner import ScenarioRun, run_functional, synthetic_content
from .scenario import KIB, MIB, UseCase
from .workload import (DEFAULT_CALIBRATION_OCTETS, dcf_octets_for_content,
                       padded_payload_octets, paper_trace, run_modeled,
                       scale_trace)
from .world import DRMWorld, RSA_BITS

__all__ = [
    "MUSIC_ACCESSES", "MUSIC_CONTENT_OCTETS", "RINGTONE_ACCESSES",
    "RINGTONE_CONTENT_OCTETS", "music_player", "paper_use_cases",
    "ringtone", "ScenarioRun", "run_functional", "synthetic_content",
    "KIB", "MIB", "UseCase", "DEFAULT_CALIBRATION_OCTETS",
    "dcf_octets_for_content", "padded_payload_octets", "paper_trace",
    "run_modeled", "scale_trace", "DRMWorld", "RSA_BITS",
    "DEFAULT_FAMILIES", "CostTemplates", "DeviceDraw",
    "FleetAccumulator", "FleetConfig", "FleetResult", "ScenarioFamily",
    "build_cost_templates", "draw_device", "run_fleet",
    "DurabilityMeasurement", "DurabilityTemplates",
    "build_durability_templates", "measure_durability",
]
