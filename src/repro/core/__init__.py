"""The paper's primary contribution: the DRM cryptographic cost model.

* :mod:`~repro.core.trace` — operation traces (the "list of cryptographic
  operations" of paper §2.4.5)
* :mod:`~repro.core.costs` — the Table 1 cycle-cost database
* :mod:`~repro.core.architecture` — SW / SW-HW / HW SoC profiles (§3)
* :mod:`~repro.core.meter` — crypto providers (plain and metered)
* :mod:`~repro.core.model` — trace pricing into cycles/time breakdowns
* :mod:`~repro.core.energy` — proportional and per-unit energy models
* :mod:`~repro.core.stats` — exact mergeable accumulators (fleet scale)
* :mod:`~repro.core.report` — Figure 5/6/7-shaped report helpers
"""

from .architecture import (ArchitectureProfile, DEFAULT_CLOCK_HZ,
                           HW_PROFILE, PAPER_PROFILES, SW_HW_PROFILE,
                           SW_PROFILE, custom_profile)
from .battery import (Battery, BatteryImpact, battery_impact,
                      drm_tax_percent)
from .concurrency import (ConcurrencyResult, DEFAULT_DISPATCH_CYCLES,
                          analyze as analyze_concurrency)
from .design_space import (DesignPoint, MACRO_AES, MACRO_BLOCKS,
                           MACRO_RSA, MACRO_SHA1, MacroCosts,
                           cheapest_within_budget,
                           enumerate_design_points, marginal_value,
                           pareto_frontier, profile_for_macros)
from .serialization import (breakdown_to_dict, dump_breakdown,
                            dump_trace, load_trace, trace_from_dict,
                            trace_to_dict)
from .stats import (StatsSummary, StreamingStats, histogram, merge_all)
from .sweep import (SweepPoint, WorkloadSweep, points_to_csv, write_csv)
from .costs import (CostOptions, CostTable, HARDWARE_COSTS, Implementation,
                    LinearCost, PAPER_TABLE1, SOFTWARE_COSTS)
from .energy import (DEFAULT_CPU_POWER_WATTS, DEFAULT_MACRO_POWER_WATTS,
                     ProportionalEnergyModel, WeightedEnergyModel)
from .meter import MeteredCrypto, PlainCrypto, units_128
from .model import CostBreakdown, PerformanceModel, PricedOperation
from .report import (ArchitectureComparison, FIGURE5_CATEGORIES,
                     FIGURE5_GROUPING, category_cycles, category_shares,
                     compare_architectures)
from .trace import Algorithm, OperationRecord, OperationTrace, Phase

__all__ = [
    "Battery", "BatteryImpact", "battery_impact", "drm_tax_percent",
    "ConcurrencyResult", "DEFAULT_DISPATCH_CYCLES",
    "analyze_concurrency", "DesignPoint", "MACRO_AES", "MACRO_BLOCKS",
    "MACRO_RSA", "MACRO_SHA1", "MacroCosts", "cheapest_within_budget",
    "enumerate_design_points", "marginal_value", "pareto_frontier",
    "profile_for_macros", "breakdown_to_dict", "dump_breakdown",
    "dump_trace", "load_trace", "trace_from_dict", "trace_to_dict",
    "StatsSummary", "StreamingStats", "histogram", "merge_all",
    "SweepPoint", "WorkloadSweep", "points_to_csv", "write_csv",
    "ArchitectureProfile", "DEFAULT_CLOCK_HZ", "HW_PROFILE",
    "PAPER_PROFILES", "SW_HW_PROFILE", "SW_PROFILE", "custom_profile",
    "CostOptions", "CostTable", "HARDWARE_COSTS", "Implementation",
    "LinearCost", "PAPER_TABLE1", "SOFTWARE_COSTS",
    "DEFAULT_CPU_POWER_WATTS", "DEFAULT_MACRO_POWER_WATTS",
    "ProportionalEnergyModel", "WeightedEnergyModel", "MeteredCrypto",
    "PlainCrypto", "units_128", "CostBreakdown", "PerformanceModel",
    "PricedOperation", "ArchitectureComparison", "FIGURE5_CATEGORIES",
    "FIGURE5_GROUPING", "category_cycles", "category_shares",
    "compare_architectures", "Algorithm", "OperationRecord",
    "OperationTrace", "Phase",
]
