"""CPU-offload concurrency: the second benefit of hardware macros.

The paper (§3) names two benefits of dedicated cryptographic hardware:
"they are much faster and **leave the processor free to do other jobs in
parallel**". The headline figures only capture the first. This module
models the second: splitting a priced breakdown into CPU-busy cycles
(software crypto plus a per-operation dispatch overhead for hardware
offload) and macro-busy cycles, and computing the wall-clock under an
overlap assumption.

Two bounding scenarios:

* ``overlap = 0.0`` — the CPU blocks on every macro operation
  (synchronous driver); wall-clock equals the paper's totals plus
  dispatch overhead.
* ``overlap = 1.0`` — the CPU queues work and runs other jobs while
  macros crunch (DMA + interrupt completion); the DRM wall-clock is
  bounded by max(CPU busy, macro busy) per phase.

The dispatch overhead default (200 cycles per hardware invocation) is an
engineering estimate for a register write + interrupt path on an ARM9
SoC, exposed as a parameter.
"""

from dataclasses import dataclass

from .costs import Implementation
from .model import CostBreakdown

#: Default CPU cycles to dispatch one hardware operation and take the
#: completion interrupt.
DEFAULT_DISPATCH_CYCLES = 200


@dataclass(frozen=True)
class ConcurrencyResult:
    """CPU/macro occupancy split and derived wall-clock times."""

    cpu_cycles: int
    macro_cycles: int
    dispatch_cycles: int
    clock_hz: int
    overlap: float

    @property
    def cpu_busy_cycles(self) -> int:
        """Cycles the CPU cannot spend on other jobs."""
        return self.cpu_cycles + self.dispatch_cycles

    @property
    def serial_cycles(self) -> int:
        """Wall-clock cycles with a fully blocking driver."""
        return self.cpu_busy_cycles + self.macro_cycles

    @property
    def wall_clock_cycles(self) -> float:
        """Wall-clock cycles at the configured overlap factor.

        Interpolates between the serial bound and the max() bound.
        """
        overlapped = max(self.cpu_busy_cycles, self.macro_cycles)
        return (self.serial_cycles
                - self.overlap * (self.serial_cycles - overlapped))

    @property
    def wall_clock_ms(self) -> float:
        """Wall-clock in milliseconds."""
        return self.wall_clock_cycles / self.clock_hz * 1000.0

    @property
    def cpu_busy_ms(self) -> float:
        """CPU-busy time in milliseconds — what other apps lose."""
        return self.cpu_busy_cycles / self.clock_hz * 1000.0

    @property
    def cpu_freed_fraction(self) -> float:
        """Fraction of the total crypto time the CPU is free for other
        jobs (the paper's 'free to do other jobs in parallel')."""
        if self.serial_cycles == 0:
            return 0.0
        return 1.0 - self.cpu_busy_cycles / self.serial_cycles


def analyze(breakdown: CostBreakdown, overlap: float = 1.0,
            dispatch_cycles_per_op: int = DEFAULT_DISPATCH_CYCLES
            ) -> ConcurrencyResult:
    """Split ``breakdown`` into CPU vs macro occupancy.

    ``overlap`` in [0, 1]: how much of the macro time the CPU can use for
    other work (0 = blocking driver, 1 = perfect DMA overlap).
    """
    if not 0.0 <= overlap <= 1.0:
        raise ValueError("overlap must be within [0, 1]")
    if dispatch_cycles_per_op < 0:
        raise ValueError("dispatch cycles must be non-negative")
    cpu = 0
    macro = 0
    dispatch = 0
    for op in breakdown.operations:
        if op.implementation == Implementation.SOFTWARE:
            cpu += op.cycles
        else:
            macro += op.cycles
            dispatch += dispatch_cycles_per_op * op.record.invocations
    return ConcurrencyResult(
        cpu_cycles=cpu, macro_cycles=macro, dispatch_cycles=dispatch,
        clock_hz=breakdown.profile.clock_hz, overlap=overlap,
    )
