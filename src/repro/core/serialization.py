"""JSON import/export for traces and priced breakdowns.

Operation traces are the library's exchange currency: a functional run on
one machine can be priced, re-priced and plotted elsewhere. This module
defines a small, versioned JSON schema for traces and a flat export for
breakdowns (for spreadsheets and external plotting).
"""

import json
from typing import Any, Dict

from .model import CostBreakdown
from .trace import Algorithm, OperationRecord, OperationTrace, Phase

#: Schema version written into every export.
SCHEMA_VERSION = 1


def trace_to_dict(trace: OperationTrace) -> Dict[str, Any]:
    """A JSON-ready representation of ``trace``."""
    return {
        "schema": SCHEMA_VERSION,
        "kind": "operation-trace",
        "records": [
            {
                "algorithm": record.algorithm.value,
                "phase": record.phase.value,
                "invocations": record.invocations,
                "blocks": record.blocks,
                "label": record.label,
            }
            for record in trace
        ],
    }


def trace_from_dict(data: Dict[str, Any]) -> OperationTrace:
    """Rebuild a trace from :func:`trace_to_dict` output.

    Raises ``ValueError`` on wrong kind/schema or malformed records, so
    corrupted files fail loudly instead of pricing garbage.
    """
    if data.get("kind") != "operation-trace":
        raise ValueError("not an operation-trace document")
    if data.get("schema") != SCHEMA_VERSION:
        raise ValueError(
            "unsupported schema version %r" % data.get("schema"))
    records = []
    for raw in data.get("records", []):
        try:
            records.append(OperationRecord(
                algorithm=Algorithm(raw["algorithm"]),
                phase=Phase(raw["phase"]),
                invocations=int(raw["invocations"]),
                blocks=int(raw["blocks"]),
                label=str(raw.get("label", "")),
            ))
        except (KeyError, ValueError) as exc:
            raise ValueError("malformed trace record %r" % (raw,)) \
                from exc
    return OperationTrace(records)


def dump_trace(trace: OperationTrace, path: str) -> None:
    """Write a trace to a JSON file."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(trace_to_dict(trace), handle, indent=2)


def load_trace(path: str) -> OperationTrace:
    """Read a trace from a JSON file."""
    with open(path, "r", encoding="utf-8") as handle:
        return trace_from_dict(json.load(handle))


def breakdown_to_dict(breakdown: CostBreakdown) -> Dict[str, Any]:
    """A JSON-ready summary of a priced breakdown."""
    return {
        "schema": SCHEMA_VERSION,
        "kind": "cost-breakdown",
        "profile": breakdown.profile.name,
        "clock_hz": breakdown.profile.clock_hz,
        "total_cycles": breakdown.total_cycles,
        "total_ms": breakdown.total_ms,
        "by_algorithm_cycles": {
            algorithm.value: cycles
            for algorithm, cycles
            in breakdown.cycles_by_algorithm().items()
        },
        "by_phase_cycles": {
            phase.value: cycles
            for phase, cycles in breakdown.cycles_by_phase().items()
        },
        "operations": [
            {
                "algorithm": op.record.algorithm.value,
                "phase": op.record.phase.value,
                "label": op.record.label,
                "implementation": op.implementation,
                "invocations": op.record.invocations,
                "blocks": op.record.blocks,
                "cycles": op.cycles,
            }
            for op in breakdown.operations
        ],
    }


def dump_breakdown(breakdown: CostBreakdown, path: str) -> None:
    """Write a breakdown summary to a JSON file."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(breakdown_to_dict(breakdown), handle, indent=2)
