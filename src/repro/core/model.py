"""Trace pricing: turn an operation trace into cycles, time and breakdowns.

This is the quantitative heart of the reproduction. Given an
:class:`~repro.core.trace.OperationTrace` (from a metered functional run
or from the analytic workload builder) and an
:class:`~repro.core.architecture.ArchitectureProfile`, the
:class:`PerformanceModel` prices every record with the Table 1 cost
database and aggregates cycles by algorithm and by phase — everything
Figures 5, 6 and 7 of the paper need.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from .architecture import ArchitectureProfile
from .costs import CostOptions, CostTable, PAPER_TABLE1
from .trace import Algorithm, OperationRecord, OperationTrace, Phase


@dataclass(frozen=True)
class PricedOperation:
    """One trace record with its implementation choice and cycle price."""

    record: OperationRecord
    implementation: str
    cycles: int


@dataclass
class CostBreakdown:
    """The priced result of one (trace, architecture) evaluation."""

    profile: ArchitectureProfile
    operations: List[PricedOperation] = field(default_factory=list)

    @property
    def total_cycles(self) -> int:
        """Total clock cycles across all operations."""
        return sum(op.cycles for op in self.operations)

    @property
    def total_ms(self) -> float:
        """Total processing time in milliseconds at the profile clock."""
        return self.profile.cycles_to_ms(self.total_cycles)

    @property
    def total_seconds(self) -> float:
        """Total processing time in seconds."""
        return self.total_ms / 1000.0

    def cycles_by_algorithm(self) -> Dict[Algorithm, int]:
        """Cycles attributed to each Table 1 algorithm."""
        totals: Dict[Algorithm, int] = {}
        for op in self.operations:
            algorithm = op.record.algorithm
            totals[algorithm] = totals.get(algorithm, 0) + op.cycles
        return totals

    def cycles_by_phase(self) -> Dict[Phase, int]:
        """Cycles attributed to each consumption-process phase."""
        totals: Dict[Phase, int] = {}
        for op in self.operations:
            phase = op.record.phase
            totals[phase] = totals.get(phase, 0) + op.cycles
        return totals

    def ms_by_phase(self) -> Dict[Phase, float]:
        """Milliseconds per phase."""
        return {
            phase: self.profile.cycles_to_ms(cycles)
            for phase, cycles in self.cycles_by_phase().items()
        }

    def ms_by_algorithm(self) -> Dict[Algorithm, float]:
        """Milliseconds per algorithm."""
        return {
            algorithm: self.profile.cycles_to_ms(cycles)
            for algorithm, cycles in self.cycles_by_algorithm().items()
        }

    def share_by_algorithm(self) -> Dict[Algorithm, float]:
        """Fraction of total cycles per algorithm (Figure 5 raw data)."""
        total = self.total_cycles
        if total == 0:
            return {}
        return {
            algorithm: cycles / total
            for algorithm, cycles in self.cycles_by_algorithm().items()
        }


class PerformanceModel:
    """Prices operation traces under architecture profiles.

    ``cost_table`` defaults to the paper's Table 1; ``options`` carries
    modeling switches shared with the metering layer (they affect what the
    *trace* contains, and are stored here so a model and its traces can be
    kept consistent by construction via :meth:`make_meter`).
    """

    def __init__(self, cost_table: CostTable = PAPER_TABLE1,
                 options: CostOptions = CostOptions()) -> None:
        self.cost_table = cost_table
        self.options = options

    def evaluate(self, trace: OperationTrace,
                 profile: ArchitectureProfile) -> CostBreakdown:
        """Price ``trace`` under ``profile``."""
        operations = []
        for record in trace:
            implementation = profile.implementation(record.algorithm)
            cycles = self.cost_table.cycles(record, implementation)
            operations.append(PricedOperation(
                record=record, implementation=implementation,
                cycles=cycles,
            ))
        return CostBreakdown(profile=profile, operations=operations)

    def compare(self, trace: OperationTrace,
                profiles: Sequence[ArchitectureProfile]
                ) -> List[CostBreakdown]:
        """Price the same trace under several profiles (Figures 6 and 7)."""
        return [self.evaluate(trace, profile) for profile in profiles]
