"""Battery-life impact of the DRM workload.

The paper motivates the whole study with "processing time and energy
consumption (ie, battery lifetime)" as the user-visible performance
dimensions. This module converts priced breakdowns into battery terms:
charge drawn per protected access, and how much of a battery the DRM
layer alone consumes over a usage pattern — the number a product manager
actually asks for.

Battery parameters default to a period-typical phone cell (an 850 mAh
Li-ion at a 3.7 V nominal voltage); energy comes from any model in
:mod:`repro.core.energy`.
"""

from dataclasses import dataclass
from typing import Optional, Union

from .energy import ProportionalEnergyModel, WeightedEnergyModel
from .model import CostBreakdown

#: Energy models this module accepts.
EnergyModel = Union[ProportionalEnergyModel, WeightedEnergyModel]


@dataclass(frozen=True)
class Battery:
    """A battery described by capacity and nominal voltage."""

    capacity_mah: float = 850.0
    nominal_volts: float = 3.7

    @property
    def capacity_joules(self) -> float:
        """Total stored energy in joules."""
        return self.capacity_mah / 1000.0 * 3600.0 * self.nominal_volts

    def fraction_used(self, joules: float) -> float:
        """Fraction of a full charge that ``joules`` represents."""
        if joules < 0:
            raise ValueError("energy must be non-negative")
        return joules / self.capacity_joules


@dataclass(frozen=True)
class BatteryImpact:
    """DRM energy cost of one workload, in battery terms."""

    joules: float
    battery: Battery

    @property
    def millijoules(self) -> float:
        """Energy in millijoules."""
        return self.joules * 1000.0

    @property
    def charge_fraction(self) -> float:
        """Fraction of a full charge consumed."""
        return self.battery.fraction_used(self.joules)

    @property
    def microamp_hours(self) -> float:
        """Charge drawn, in microampere-hours at nominal voltage."""
        return (self.joules / self.battery.nominal_volts) / 3600.0 * 1e6

    def runs_per_charge(self) -> float:
        """How many times this workload fits in one full charge,
        if the battery powered nothing else."""
        if self.joules == 0:
            return float("inf")
        return self.battery.capacity_joules / self.joules


def battery_impact(breakdown: CostBreakdown,
                   energy_model: Optional[EnergyModel] = None,
                   battery: Battery = Battery()) -> BatteryImpact:
    """Battery impact of one priced breakdown."""
    if energy_model is None:
        energy_model = WeightedEnergyModel()
    return BatteryImpact(joules=energy_model.joules(breakdown),
                         battery=battery)


def drm_tax_percent(breakdown: CostBreakdown, playback_watts: float,
                    playback_seconds: float,
                    energy_model: Optional[EnergyModel] = None) -> float:
    """DRM energy as a percentage of the content playback energy itself.

    ``playback_watts`` is the rest-of-system power while rendering the
    content (codec, DAC/amplifier, backlight as applicable) and
    ``playback_seconds`` the total rendering time of the workload. The
    result is the "DRM tax": how much the protection adds on top of
    merely playing the media.
    """
    if playback_watts <= 0 or playback_seconds <= 0:
        raise ValueError("playback power and duration must be positive")
    if energy_model is None:
        energy_model = WeightedEnergyModel()
    drm_joules = energy_model.joules(breakdown)
    playback_joules = playback_watts * playback_seconds
    return 100.0 * drm_joules / playback_joules
