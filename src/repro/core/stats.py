"""Mergeable streaming statistics for fleet-scale aggregation.

The fleet engine (:mod:`repro.usecases.fleet`) prices 10^4-10^6 simulated
devices; retaining a per-device trace — or even a per-device scalar — would
cost O(devices) memory and make multi-process aggregation awkward. A
:class:`StreamingStats` instead folds every observation into a compact
value-count distribution the moment it is seen, and two accumulators merge
into one that is *exactly* equal to the accumulator a single pass over the
union would have produced.

Design constraints, in order:

* **Exact merges.** ``merge`` must be associative and commutative with
  bit-identical results, so sharded runs agree with serial runs for any
  worker count. All internal state is therefore integer-valued (counts and
  integer observations); no float accumulation order can leak in.
* **Exact percentiles.** Fleet observations are drawn from discrete
  parameter grids (scenario family x size bucket x accesses x retry
  count), so the number of *distinct* values is bounded by the grid, not
  the population. A ``Counter`` over exact values gives exact p50/p95/p99
  at O(distinct values) memory.
* **Cheap ingestion.** ``add`` is a dict increment.

For observations from continuous domains, quantize before adding (the
accumulator raises on non-integer values rather than silently degrading).
"""

from collections import Counter
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, Iterable, Optional, Tuple

#: The percentile levels fleet reports quote.
REPORT_PERCENTILES = (50.0, 95.0, 99.0)


@dataclass(frozen=True)
class StatsSummary:
    """A point-in-time summary of one :class:`StreamingStats`."""

    count: int
    total: int
    minimum: Optional[int]
    maximum: Optional[int]
    mean: float
    p50: Optional[int]
    p95: Optional[int]
    p99: Optional[int]

    def scaled(self, factor: float) -> Tuple[float, float, float, float]:
        """(mean, p50, p95, p99) under a linear unit conversion.

        Percentiles commute with monotone transforms, so converting the
        integer cycle summaries to milliseconds or millijoules is exact.
        """
        return (self.mean * factor,
                (self.p50 or 0) * factor,
                (self.p95 or 0) * factor,
                (self.p99 or 0) * factor)


@dataclass
class StreamingStats:
    """Exact, mergeable distribution over integer observations."""

    counts: Counter = field(default_factory=Counter)

    def add(self, value: int, weight: int = 1) -> None:
        """Fold in ``value`` observed ``weight`` times."""
        if not isinstance(value, int) or isinstance(value, bool):
            raise TypeError("observations must be integers; quantize "
                            "continuous values before adding")
        if weight < 0:
            raise ValueError("weight must be non-negative")
        if weight:
            self.counts[value] += weight

    def extend(self, values: Iterable[int]) -> None:
        """Fold in many observations."""
        for value in values:
            self.add(value)

    def merge(self, other: "StreamingStats") -> "StreamingStats":
        """Exact union of two accumulators (associative, commutative)."""
        merged = Counter(self.counts)
        merged.update(other.counts)
        return StreamingStats(counts=merged)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StreamingStats):
            return NotImplemented
        # Counter equality ignores zero-count keys only when absent;
        # normalize so add(v, 0) histories cannot break equality.
        return ({k: v for k, v in self.counts.items() if v}
                == {k: v for k, v in other.counts.items() if v})

    # -- scalar statistics -----------------------------------------------
    @property
    def count(self) -> int:
        """Number of observations."""
        return sum(self.counts.values())

    @property
    def total(self) -> int:
        """Sum of observations."""
        return sum(value * count for value, count in self.counts.items())

    @property
    def mean(self) -> float:
        """Arithmetic mean (0.0 when empty)."""
        count = self.count
        return self.total / count if count else 0.0

    @property
    def minimum(self) -> Optional[int]:
        """Smallest observation, ``None`` when empty."""
        return min(self.counts) if self.counts else None

    @property
    def maximum(self) -> Optional[int]:
        """Largest observation, ``None`` when empty."""
        return max(self.counts) if self.counts else None

    def percentile(self, p: float) -> Optional[int]:
        """Exact percentile via the nearest-rank method.

        The nearest-rank definition (smallest value with cumulative count
        >= ceil(p/100 * N)) returns an actually-observed value and is
        stable under merges — unlike interpolating estimators.
        """
        if not 0.0 < p <= 100.0:
            raise ValueError("percentile must be in (0, 100]")
        count = self.count
        if not count:
            return None
        # Exact ceil(p * count / 100) in rational arithmetic. Two float
        # traps lurk in the obvious spellings: ``int(p * count)``
        # truncates the fractional part *before* the ceiling (p=50.25,
        # N=2 -> rank 1 instead of 2), and ``p * count / 100`` can land
        # an epsilon above an integer (p=64.1, N=1000 -> ceil 642
        # instead of 641). ``Fraction(repr(p))`` recovers the decimal
        # the caller wrote, making the rank exact for both.
        exact = Fraction(repr(float(p))) * count / 100
        rank = -((-exact.numerator) // exact.denominator)
        rank = max(rank, 1)
        cumulative = 0
        for value in sorted(self.counts):
            cumulative += self.counts[value]
            if cumulative >= rank:
                return value
        return self.maximum  # pragma: no cover - defensive

    def summary(self) -> StatsSummary:
        """Snapshot all reported statistics at once."""
        return StatsSummary(
            count=self.count, total=self.total,
            minimum=self.minimum, maximum=self.maximum, mean=self.mean,
            p50=self.percentile(50.0), p95=self.percentile(95.0),
            p99=self.percentile(99.0),
        )


@dataclass
class TimeWeightedStats:
    """Exact time-average of an integer step function.

    The simulation kernel (:mod:`repro.sim`) needs time-averaged queue
    depths and server occupancies: quantities of the form
    ``(1/T) * integral of N(t) dt`` where ``N(t)`` is piecewise constant
    between events. With integer timestamps and integer values the
    integral is an exact integer area, so Little's-law identities hold
    bit-exactly instead of approximately.

    Unlike :class:`StreamingStats` this accumulator is *not* mergeable:
    two observers of the same timeline would double-count, and observers
    of different timelines share no common time axis.
    """

    area: int = 0
    maximum: int = 0
    _value: int = 0
    _since: int = 0

    def observe(self, value: int, now: int) -> None:
        """Record that the tracked quantity became ``value`` at ``now``."""
        if not isinstance(value, int) or isinstance(value, bool):
            raise TypeError("time-weighted values must be integers")
        if now < self._since:
            raise ValueError("observations must not move backwards in "
                             "time")
        self.area += self._value * (now - self._since)
        self._value = value
        self._since = now
        if value > self.maximum:
            self.maximum = value

    @property
    def value(self) -> int:
        """The current value of the step function."""
        return self._value

    def area_until(self, now: int) -> int:
        """Exact integral of the step function over ``[0, now]``."""
        if now < self._since:
            raise ValueError("cannot integrate into the past")
        return self.area + self._value * (now - self._since)

    def mean(self, now: int) -> float:
        """Time-average value over ``[0, now]`` (0.0 on an empty span)."""
        return self.area_until(now) / now if now else 0.0


def merge_all(accumulators: Iterable[StreamingStats]) -> StreamingStats:
    """Left fold of :meth:`StreamingStats.merge` over ``accumulators``."""
    result = StreamingStats()
    for accumulator in accumulators:
        result = result.merge(accumulator)
    return result


def histogram(stats: StreamingStats,
              bins: int = 10) -> Dict[Tuple[int, int], int]:
    """Equal-width binning of an accumulator, for quick-look rendering.

    Returns ``{(low, high): count}`` with right-open bins except the last.
    Purely presentational — statistics always come from the exact counts.
    """
    if bins < 1:
        raise ValueError("at least one bin is required")
    if not stats.counts:
        return {}
    low, high = stats.minimum, stats.maximum
    if low == high:
        return {(low, high): stats.count}
    width = (high - low) / bins
    out: Dict[Tuple[int, int], int] = {}
    edges = [low + round(i * width) for i in range(bins)] + [high]
    for i in range(bins):
        lo, hi = edges[i], edges[i + 1]
        total = sum(c for v, c in stats.counts.items()
                    if lo <= v < hi or (i == bins - 1 and v == high))
        if total:
            out[(lo, hi)] = total
    return out
