"""Shared deterministic jitter and seed derivation.

Two subsystems grew the same idiom independently: the session layer's
retry backoff (:class:`repro.drm.session.RetryPolicy`) derives a
0..jitter offset from ``sha1("<salt>/<attempt>")``, and the event
kernel (:meth:`repro.sim.kernel.Kernel.stream`) seeds its per-entity
DRBG streams from ``"<seed>/<name>"``. This module is the single
definition both build on, so the derivations can never drift apart —
the bit-exact equivalence suites (``tests/sim/test_equivalence.py``,
``tests/drm/test_session.py``) depend on every byte of it.

Design notes:

* :func:`derive` is a plain ``"/"``-join. It is deliberately *not*
  injective across part boundaries (``derive("a/b") == derive("a",
  "b")``) — callers namespace their salts, and the historical formats
  (``"%s/%s"``, ``"%s/%d"``) must be reproduced byte-for-byte.
* :func:`deterministic_jitter` takes the *first octet* of the SHA-1
  digest modulo ``spread + 1``. One octet bounds the spread at 255,
  which is intentional: jitter desynchronizes a fleet, it does not
  need entropy, and the narrow range keeps every historical backoff
  value unchanged.
"""

# repro: allow[REP201] -- jitter/seed derivation is scheduling bookkeeping, intentionally unpriced like the DRBG (see repro.core.meter); routing it through the provider would distort the paper's Table 1 costs
from ..crypto.sha1 import sha1


def derive(*parts) -> str:
    """Join derivation parts with ``"/"`` — the repo's one seed idiom.

    ``derive(seed, name)`` reproduces the kernel's historical
    ``"%s/%s" % (seed, name)`` stream seeds and the session's
    ``"%s/%d" % (salt, attempt)`` jitter keys exactly.
    """
    return "/".join(str(part) for part in parts)


def stream_seed(seed: str, name: str) -> str:
    """The DRBG seed for entity ``name`` under kernel seed ``seed``."""
    return derive(seed, name)


def deterministic_jitter(salt: str, attempt: int, spread: int) -> int:
    """A stable pseudo-random offset in ``0..spread`` (inclusive).

    Derived from ``sha1(derive(salt, attempt))`` — the same value for
    the same inputs on every platform and every run, so a fleet of
    devices desynchronizes without any single device being
    nondeterministic. Bit-exact with the historical
    ``RetryPolicy.backoff_seconds`` jitter term.
    """
    if spread < 0:
        raise ValueError("the jitter spread must be non-negative")
    if spread == 0:
        return 0
    digest = sha1(derive(salt, attempt).encode("utf-8"))
    return digest[0] % (spread + 1)
