"""Report helpers that shape priced breakdowns into the paper's artifacts.

Figure 5 groups the six Table 1 algorithms into four display categories
(its legend): *PKI Public Key Operation*, *PKI Private Key Operation*,
*AES Decryption* and *SHA-1*. HMAC-SHA1 work is SHA-1 hashing and is folded
into the SHA-1 category; AES encryption work (only the small installation
re-wrap) is folded into AES Decryption, matching the legend's omission.
"""

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence

from .architecture import ArchitectureProfile
from .model import CostBreakdown, PerformanceModel
from .trace import Algorithm, OperationTrace

#: Figure 5 legend categories, in the paper's stacking order.
FIGURE5_CATEGORIES = (
    "PKI Public Key Operation",
    "PKI Private Key Operation",
    "AES Decryption",
    "SHA-1",
)

#: Table 1 algorithm -> Figure 5 legend category.
FIGURE5_GROUPING: Mapping[Algorithm, str] = {
    Algorithm.RSA_PUBLIC: "PKI Public Key Operation",
    Algorithm.RSA_PRIVATE: "PKI Private Key Operation",
    Algorithm.AES_DECRYPT: "AES Decryption",
    Algorithm.AES_ENCRYPT: "AES Decryption",
    Algorithm.SHA1: "SHA-1",
    Algorithm.HMAC_SHA1: "SHA-1",
}


def category_cycles(breakdown: CostBreakdown) -> Dict[str, int]:
    """Cycles per Figure 5 legend category."""
    totals = {category: 0 for category in FIGURE5_CATEGORIES}
    for algorithm, cycles in breakdown.cycles_by_algorithm().items():
        totals[FIGURE5_GROUPING[algorithm]] += cycles
    return totals


def category_shares(breakdown: CostBreakdown) -> Dict[str, float]:
    """Fraction of total cycles per Figure 5 category (sums to 1)."""
    totals = category_cycles(breakdown)
    grand_total = sum(totals.values())
    if grand_total == 0:
        return {category: 0.0 for category in FIGURE5_CATEGORIES}
    return {
        category: cycles / grand_total
        for category, cycles in totals.items()
    }


@dataclass(frozen=True)
class ArchitectureComparison:
    """One Figure 6/7-style series: total ms per architecture variant."""

    use_case: str
    breakdowns: Sequence[CostBreakdown]

    def series_ms(self) -> List[float]:
        """Total milliseconds in profile order (the figure's bars)."""
        return [b.total_ms for b in self.breakdowns]

    def labels(self) -> List[str]:
        """Profile names in order (the figure's x-axis)."""
        return [b.profile.name for b in self.breakdowns]

    def speedup_over_software(self) -> List[float]:
        """Speedup of each variant relative to the first (SW) bar."""
        series = self.series_ms()
        if not series or series[0] == 0:
            return []
        return [series[0] / value if value else float("inf")
                for value in series]


def compare_architectures(trace: OperationTrace,
                          profiles: Sequence[ArchitectureProfile],
                          model: PerformanceModel = None,
                          use_case: str = "") -> ArchitectureComparison:
    """Price one use-case trace under several profiles (Figures 6 and 7)."""
    if model is None:
        model = PerformanceModel()
    return ArchitectureComparison(
        use_case=use_case,
        breakdowns=model.compare(trace, profiles),
    )
