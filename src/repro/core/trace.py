"""Operation traces: the interface between the functional DRM model and
the cost model.

The paper's methodology (§2.4.5) is to run a functional model of OMA DRM 2,
extract "a list of cryptographic operations carried out in each of the four
phases", and price that list under different architecture assumptions. The
:class:`OperationTrace` is that list. Each :class:`OperationRecord` captures
one primitive invocation batch — which algorithm ran, in which consumption
phase, how many keyed invocations (the per-invocation constant of Table 1,
e.g. AES key scheduling) and how many data blocks were processed.

Block units follow Table 1's normalization:

* AES, SHA-1, HMAC-SHA1 — 128-bit units,
* RSA — 1024-bit units (one unit per modular exponentiation).
"""

import enum
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, Iterator, List, Optional, Tuple


class Algorithm(enum.Enum):
    """The cryptographic algorithms of Table 1."""

    AES_ENCRYPT = "aes-encrypt"
    AES_DECRYPT = "aes-decrypt"
    SHA1 = "sha1"
    HMAC_SHA1 = "hmac-sha1"
    RSA_PUBLIC = "rsa-1024-public"
    RSA_PRIVATE = "rsa-1024-private"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class Phase(enum.Enum):
    """The four consumption-process phases of paper §2.4."""

    REGISTRATION = "registration"
    ACQUISITION = "acquisition"
    INSTALLATION = "installation"
    CONSUMPTION = "consumption"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class OperationRecord:
    """One priced batch of cryptographic work.

    ``invocations`` counts keyed operations (each pays the Table 1 constant
    offset); ``blocks`` counts data units in the algorithm's native block
    size (128 bits for the symmetric algorithms, 1024 bits for RSA).
    """

    algorithm: Algorithm
    phase: Phase
    invocations: int
    blocks: int
    label: str = ""

    def __post_init__(self) -> None:
        if self.invocations < 0 or self.blocks < 0:
            raise ValueError("operation counts must be non-negative")

    def merge_key(self) -> Tuple[Algorithm, Phase, str]:
        """Grouping key used when aggregating records."""
        return (self.algorithm, self.phase, self.label)

    def scaled(self, factor: int) -> "OperationRecord":
        """The same record repeated ``factor`` times."""
        if factor < 0:
            raise ValueError("scale factor must be non-negative")
        return replace(self, invocations=self.invocations * factor,
                       blocks=self.blocks * factor)


@dataclass
class OperationTrace:
    """An ordered list of :class:`OperationRecord` with aggregation helpers."""

    records: List[OperationRecord] = field(default_factory=list)

    def append(self, record: OperationRecord) -> None:
        """Append one record."""
        self.records.append(record)

    def extend(self, records: Iterable[OperationRecord]) -> None:
        """Append many records."""
        self.records.extend(records)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[OperationRecord]:
        return iter(self.records)

    def __add__(self, other: "OperationTrace") -> "OperationTrace":
        return OperationTrace(self.records + other.records)

    def filter(self, algorithm: Optional[Algorithm] = None,
               phase: Optional[Phase] = None) -> "OperationTrace":
        """A sub-trace restricted to one algorithm and/or phase."""
        selected = [
            r for r in self.records
            if (algorithm is None or r.algorithm == algorithm)
            and (phase is None or r.phase == phase)
        ]
        return OperationTrace(selected)

    def totals_by_algorithm(self) -> Dict[Algorithm, Tuple[int, int]]:
        """Map algorithm -> (total invocations, total blocks)."""
        totals: Dict[Algorithm, Tuple[int, int]] = {}
        for record in self.records:
            inv, blk = totals.get(record.algorithm, (0, 0))
            totals[record.algorithm] = (
                inv + record.invocations, blk + record.blocks
            )
        return totals

    def totals_by_phase(self) -> Dict[Phase, Tuple[int, int]]:
        """Map phase -> (total invocations, total blocks)."""
        totals: Dict[Phase, Tuple[int, int]] = {}
        for record in self.records:
            inv, blk = totals.get(record.phase, (0, 0))
            totals[record.phase] = (
                inv + record.invocations, blk + record.blocks
            )
        return totals

    def aggregated(self) -> "OperationTrace":
        """Collapse records that share (algorithm, phase, label).

        Ordering follows first appearance, so aggregated traces from a
        functional run and from the analytic workload builder compare
        equal when they describe the same work.
        """
        merged: Dict[Tuple[Algorithm, Phase, str], OperationRecord] = {}
        order: List[Tuple[Algorithm, Phase, str]] = []
        for record in self.records:
            key = record.merge_key()
            if key in merged:
                existing = merged[key]
                merged[key] = replace(
                    existing,
                    invocations=existing.invocations + record.invocations,
                    blocks=existing.blocks + record.blocks,
                )
            else:
                merged[key] = record
                order.append(key)
        return OperationTrace([merged[key] for key in order])

    def canonical(self) -> List[Tuple[str, str, int, int]]:
        """A hashable, order-independent summary for equality testing.

        Collapses labels — two traces are canonically equal when they
        perform the same cryptographic work per algorithm and phase,
        regardless of how the work was annotated or batched.
        """
        totals: Dict[Tuple[str, str], Tuple[int, int]] = {}
        for record in self.records:
            key = (record.algorithm.value, record.phase.value)
            inv, blk = totals.get(key, (0, 0))
            totals[key] = (inv + record.invocations, blk + record.blocks)
        return sorted(
            (alg, phase, inv, blk)
            for (alg, phase), (inv, blk) in totals.items()
        )
