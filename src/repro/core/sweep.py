"""Generic parameter sweeps with CSV export.

The ablation modules each hand-roll one sweep; this utility generalizes
the pattern for downstream users: a grid over (content size, accesses,
architecture) priced from a single calibration run, with rows usable
directly or written as CSV for external plotting.
"""

import csv
import io
from dataclasses import dataclass
from typing import List, Optional, Sequence

from .architecture import ArchitectureProfile, PAPER_PROFILES
from .model import PerformanceModel


@dataclass(frozen=True)
class SweepPoint:
    """One grid cell of a workload/architecture sweep."""

    content_octets: int
    accesses: int
    architecture: str
    total_ms: float
    total_cycles: int


class WorkloadSweep:
    """Grid evaluation over sizes × accesses × architectures.

    ``scaler`` is a :class:`repro.usecases.workload.WorkloadScaler`
    (duck-typed: anything with ``trace(content_octets, accesses)``), so
    the whole grid costs one protocol execution.
    """

    def __init__(self, scaler, model: Optional[PerformanceModel] = None,
                 profiles: Sequence[ArchitectureProfile] = PAPER_PROFILES
                 ) -> None:
        self._scaler = scaler
        self._model = model if model is not None else PerformanceModel()
        self._profiles = list(profiles)

    def run(self, sizes_octets: Sequence[int],
            accesses: Sequence[int]) -> List[SweepPoint]:
        """Evaluate the full grid; returns points in grid order."""
        points = []
        for size in sizes_octets:
            for n in accesses:
                trace = self._scaler.trace(content_octets=size,
                                           accesses=n)
                for profile in self._profiles:
                    breakdown = self._model.evaluate(trace, profile)
                    points.append(SweepPoint(
                        content_octets=size, accesses=n,
                        architecture=profile.name,
                        total_ms=breakdown.total_ms,
                        total_cycles=breakdown.total_cycles,
                    ))
        return points


def points_to_csv(points: Sequence[SweepPoint]) -> str:
    """Render sweep points as CSV text (header + one row per point)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(("content_octets", "accesses", "architecture",
                     "total_ms", "total_cycles"))
    for point in points:
        writer.writerow((point.content_octets, point.accesses,
                         point.architecture,
                         "%.6f" % point.total_ms, point.total_cycles))
    return buffer.getvalue()


def write_csv(points: Sequence[SweepPoint], path: str) -> None:
    """Write sweep points to a CSV file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(points_to_csv(points))
