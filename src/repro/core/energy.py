"""Energy models for the DRM workload.

The paper's first-order assumption (§3): "we assumed energy consumption to
be directly related to processing performance", i.e. energy is proportional
to processing time — :class:`ProportionalEnergyModel`.

Its future-work remark — "first results seem to indicate that the gap
between software and hardware realizations in this case is even wider than
for processing time" — motivates :class:`WeightedEnergyModel`, which gives
each execution unit its own active-power figure, so a hardware macro that
is both faster *and* lower-power widens the SW/HW gap beyond the time
ratio. The default power numbers are illustrative engineering values for a
130 nm-class SoC of the period (an ARM9 core around 0.4 mW/MHz; dedicated
macros an order of magnitude below), chosen only to demonstrate the
qualitative effect the authors describe; the ablation bench sweeps them.
"""

from dataclasses import dataclass, field
from typing import Dict, Mapping

from .costs import Implementation
from .model import CostBreakdown

#: Illustrative ARM9-class core active power at 200 MHz (0.4 mW/MHz).
DEFAULT_CPU_POWER_WATTS = 0.080

#: Illustrative dedicated-macro active power (an order of magnitude lower).
DEFAULT_MACRO_POWER_WATTS = 0.008


@dataclass(frozen=True)
class ProportionalEnergyModel:
    """Paper baseline: energy = total processing time x constant power."""

    power_watts: float = DEFAULT_CPU_POWER_WATTS

    def joules(self, breakdown: CostBreakdown) -> float:
        """Energy in joules for one priced breakdown."""
        return breakdown.total_seconds * self.power_watts


@dataclass(frozen=True)
class WeightedEnergyModel:
    """Per-execution-unit energy: cycles on each unit x that unit's power.

    ``unit_power_watts`` maps :class:`~repro.core.costs.Implementation`
    values to active power. Cycles spent on a hardware macro are priced at
    the macro's power, not the CPU's.
    """

    unit_power_watts: Mapping[str, float] = field(default_factory=lambda: {
        Implementation.SOFTWARE: DEFAULT_CPU_POWER_WATTS,
        Implementation.HARDWARE: DEFAULT_MACRO_POWER_WATTS,
    })

    def joules(self, breakdown: CostBreakdown) -> float:
        """Energy in joules, pricing each unit's cycles at its own power."""
        clock_hz = breakdown.profile.clock_hz
        total = 0.0
        for op in breakdown.operations:
            power = self.unit_power_watts[op.implementation]
            total += op.cycles / clock_hz * power
        return total

    def joules_by_unit(self, breakdown: CostBreakdown) -> Dict[str, float]:
        """Energy split per execution unit (software core vs macros)."""
        clock_hz = breakdown.profile.clock_hz
        totals: Dict[str, float] = {}
        for op in breakdown.operations:
            power = self.unit_power_watts[op.implementation]
            joules = op.cycles / clock_hz * power
            totals[op.implementation] = (
                totals.get(op.implementation, 0.0) + joules
            )
        return totals
