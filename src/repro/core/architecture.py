"""SoC architecture profiles — the paper's three implementation variants.

The paper's system model (§3) is a System-on-Chip Application Processor: a
general-purpose core (ARM9 class), optional dedicated cryptographic
hardware macros, secure on-chip memory and a system bus. An
:class:`ArchitectureProfile` assigns each Table 1 algorithm to software or
to a hardware macro and fixes the clock frequency (200 MHz in every paper
variant).

The three evaluated variants:

* :data:`SW_PROFILE` — everything on the CPU.
* :data:`SW_HW_PROFILE` — AES and SHA-1 (and hence HMAC-SHA1) in hardware,
  RSA in software.
* :data:`HW_PROFILE` — dedicated macros for every algorithm.
"""

from dataclasses import dataclass, field
from typing import Dict, Mapping

from .costs import Implementation
from .trace import Algorithm

#: The paper's assumed clock frequency for every variant.
DEFAULT_CLOCK_HZ = 200_000_000


@dataclass(frozen=True)
class ArchitectureProfile:
    """One hardware/software partitioning of the cryptographic workload."""

    name: str
    assignment: Mapping[Algorithm, str]
    clock_hz: int = DEFAULT_CLOCK_HZ
    description: str = ""

    def __post_init__(self) -> None:
        if self.clock_hz <= 0:
            raise ValueError("clock frequency must be positive")
        missing = [a for a in Algorithm if a not in self.assignment]
        if missing:
            raise ValueError(
                "profile %r lacks assignments for %s"
                % (self.name, ", ".join(str(a) for a in missing))
            )
        bad = [
            a for a, impl in self.assignment.items()
            if impl not in Implementation.ALL
        ]
        if bad:
            raise ValueError(
                "profile %r has invalid implementations for %s"
                % (self.name, ", ".join(str(a) for a in bad))
            )

    def implementation(self, algorithm: Algorithm) -> str:
        """Where ``algorithm`` executes under this profile."""
        return self.assignment[algorithm]

    def cycles_to_ms(self, cycles: int) -> float:
        """Convert a cycle count to milliseconds at this profile's clock."""
        return cycles / self.clock_hz * 1000.0

    def hardware_algorithms(self) -> Dict[Algorithm, str]:
        """The subset of algorithms mapped to dedicated macros."""
        return {
            a: impl for a, impl in self.assignment.items()
            if impl == Implementation.HARDWARE
        }


def _uniform(implementation: str) -> Dict[Algorithm, str]:
    return {algorithm: implementation for algorithm in Algorithm}


#: Pure software variant ("SW" in Figures 6 and 7).
SW_PROFILE = ArchitectureProfile(
    name="SW",
    assignment=_uniform(Implementation.SOFTWARE),
    description="All cryptography on the general-purpose core.",
)

#: Mixed variant ("SW/HW"): AES + SHA-1 macros, RSA in software.
SW_HW_PROFILE = ArchitectureProfile(
    name="SW/HW",
    assignment={
        Algorithm.AES_ENCRYPT: Implementation.HARDWARE,
        Algorithm.AES_DECRYPT: Implementation.HARDWARE,
        Algorithm.SHA1: Implementation.HARDWARE,
        Algorithm.HMAC_SHA1: Implementation.HARDWARE,
        Algorithm.RSA_PUBLIC: Implementation.SOFTWARE,
        Algorithm.RSA_PRIVATE: Implementation.SOFTWARE,
    },
    description="AES and SHA-1 (thus HMAC-SHA1) in hardware macros; "
                "RSA in software.",
)

#: Full hardware variant ("HW"): dedicated macros for every algorithm.
HW_PROFILE = ArchitectureProfile(
    name="HW",
    assignment=_uniform(Implementation.HARDWARE),
    description="Dedicated hardware macros for every algorithm.",
)

#: The three variants in the order the paper plots them.
PAPER_PROFILES = (SW_PROFILE, SW_HW_PROFILE, HW_PROFILE)


def custom_profile(name: str, hardware: Mapping[Algorithm, bool],
                   clock_hz: int = DEFAULT_CLOCK_HZ,
                   description: str = "") -> ArchitectureProfile:
    """Build a profile from a per-algorithm hardware yes/no map.

    Algorithms absent from ``hardware`` default to software, so
    ``custom_profile("aes-only", {Algorithm.AES_DECRYPT: True})`` describes
    a SoC with a lone AES decryption macro.
    """
    assignment = {
        algorithm: (Implementation.HARDWARE
                    if hardware.get(algorithm, False)
                    else Implementation.SOFTWARE)
        for algorithm in Algorithm
    }
    return ArchitectureProfile(name=name, assignment=assignment,
                               clock_hz=clock_hz, description=description)
