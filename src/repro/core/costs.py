"""Cycle-cost database — the paper's Table 1.

Every entry is a :class:`LinearCost`: a constant per-invocation offset plus
a per-block cost, in clock cycles. Block units are the paper's: 128 bits
for the symmetric algorithms, 1024 bits (one modular exponentiation) for
RSA.

Table 1 of the paper, verbatim:

=====================  ==========================  =======================
Algorithm              Software [cycles]           Hardware [cycles]
=====================  ==========================  =======================
AES Encryption         360 + 830/128 bit           10/128 bit
AES Decryption         950 + 830/128 bit           10 + 10/128 bit
SHA-1                  400/128 bit                 20/128 bit
HMAC SHA-1             1200 + 400/128 bit          240 + 20/128 bit
RSA 1024 Public Key    2,160,000/1024 bit          10,000/1024 bit
RSA 1024 Private Key   37,740,000/1024 bit [#]_    260,000/1024 bit
=====================  ==========================  =======================

.. [#] The paper prints "3,774,0000" — a typesetting slip. 37 740 000 is
   the only reading consistent with the paper's own derived results: it
   yields the "roughly 600ms" total PKI time and the Figure 6/7 bars,
   while 3 774 000 would make them unreachable by an order of magnitude.
   It also matches the expected ~17:1 CRT-exponentiation ratio against
   the 2 160 000-cycle public operation with e = 2^16 + 1.

The constant offsets are, per the paper, key scheduling (AES) and hashing
on fixed-length data (HMAC).
"""

from dataclasses import dataclass, field
from typing import Dict, Mapping, Tuple

from .trace import Algorithm, OperationRecord


class Implementation:
    """Where an algorithm executes: CPU software or a dedicated macro."""

    SOFTWARE = "software"
    HARDWARE = "hardware"

    ALL = (SOFTWARE, HARDWARE)


@dataclass(frozen=True)
class LinearCost:
    """``cycles = offset * invocations + per_block * blocks``."""

    offset_cycles: int
    cycles_per_block: int
    block_bits: int = 128

    def cycles(self, invocations: int, blocks: int) -> int:
        """Total cycles for a batch of work."""
        if invocations < 0 or blocks < 0:
            raise ValueError("operation counts must be non-negative")
        return (self.offset_cycles * invocations
                + self.cycles_per_block * blocks)


#: Paper Table 1 — software column.
SOFTWARE_COSTS: Mapping[Algorithm, LinearCost] = {
    Algorithm.AES_ENCRYPT: LinearCost(360, 830),
    Algorithm.AES_DECRYPT: LinearCost(950, 830),
    Algorithm.SHA1: LinearCost(0, 400),
    Algorithm.HMAC_SHA1: LinearCost(1200, 400),
    Algorithm.RSA_PUBLIC: LinearCost(0, 2_160_000, block_bits=1024),
    Algorithm.RSA_PRIVATE: LinearCost(0, 37_740_000, block_bits=1024),
}

#: Paper Table 1 — hardware column.
HARDWARE_COSTS: Mapping[Algorithm, LinearCost] = {
    Algorithm.AES_ENCRYPT: LinearCost(0, 10),
    Algorithm.AES_DECRYPT: LinearCost(10, 10),
    Algorithm.SHA1: LinearCost(0, 20),
    Algorithm.HMAC_SHA1: LinearCost(240, 20),
    Algorithm.RSA_PUBLIC: LinearCost(0, 10_000, block_bits=1024),
    Algorithm.RSA_PRIVATE: LinearCost(0, 260_000, block_bits=1024),
}


@dataclass(frozen=True)
class CostTable:
    """Cycle costs per (algorithm, implementation).

    ``TABLE1`` (module constant :data:`PAPER_TABLE1`) encodes the paper's
    numbers; custom tables support what-if studies (e.g. a faster RSA
    macro or a slower CPU).
    """

    software: Mapping[Algorithm, LinearCost] = field(
        default_factory=lambda: dict(SOFTWARE_COSTS))
    hardware: Mapping[Algorithm, LinearCost] = field(
        default_factory=lambda: dict(HARDWARE_COSTS))

    def cost(self, algorithm: Algorithm, implementation: str) -> LinearCost:
        """Look up the cost entry for one algorithm/implementation pair."""
        if implementation == Implementation.SOFTWARE:
            table = self.software
        elif implementation == Implementation.HARDWARE:
            table = self.hardware
        else:
            raise KeyError("unknown implementation %r" % (implementation,))
        if algorithm not in table:
            raise KeyError(
                "no %s cost for %s" % (implementation, algorithm)
            )
        return table[algorithm]

    def cycles(self, record: OperationRecord, implementation: str) -> int:
        """Price one trace record under one implementation choice."""
        entry = self.cost(record.algorithm, implementation)
        return entry.cycles(record.invocations, record.blocks)

    def rows(self) -> Dict[Algorithm, Tuple[LinearCost, LinearCost]]:
        """Algorithm -> (software, hardware) cost pairs, Table 1 shaped."""
        return {
            algorithm: (self.software[algorithm], self.hardware[algorithm])
            for algorithm in Algorithm
        }

    def override(self, algorithm: Algorithm, implementation: str,
                 cost: LinearCost) -> "CostTable":
        """A copy with one entry replaced — the what-if hook.

        Example: a next-generation RSA macro at half the cycle count::

            faster = PAPER_TABLE1.override(
                Algorithm.RSA_PRIVATE, Implementation.HARDWARE,
                LinearCost(0, 130_000, block_bits=1024))
        """
        software = dict(self.software)
        hardware = dict(self.hardware)
        if implementation == Implementation.SOFTWARE:
            software[algorithm] = cost
        elif implementation == Implementation.HARDWARE:
            hardware[algorithm] = cost
        else:
            raise KeyError("unknown implementation %r" % (implementation,))
        return CostTable(software=software, hardware=hardware)

    def scaled(self, implementation: str, factor: float) -> "CostTable":
        """A copy with every cost of one implementation scaled by
        ``factor`` (e.g. a uniformly slower CPU: factor > 1)."""
        if factor <= 0:
            raise ValueError("scale factor must be positive")

        def scale(cost: LinearCost) -> LinearCost:
            return LinearCost(
                offset_cycles=int(round(cost.offset_cycles * factor)),
                cycles_per_block=int(round(
                    cost.cycles_per_block * factor)),
                block_bits=cost.block_bits,
            )

        if implementation == Implementation.SOFTWARE:
            return CostTable(
                software={a: scale(c) for a, c in self.software.items()},
                hardware=dict(self.hardware),
            )
        if implementation == Implementation.HARDWARE:
            return CostTable(
                software=dict(self.software),
                hardware={a: scale(c) for a, c in self.hardware.items()},
            )
        raise KeyError("unknown implementation %r" % (implementation,))


#: The paper's Table 1 as a ready-to-use cost table.
PAPER_TABLE1 = CostTable()


@dataclass(frozen=True)
class CostOptions:
    """Modeling switches that change which operations are counted.

    ``count_mgf1`` — the paper approximates EMSA-PSS with "just one hash
    function over the message code"; enabling this counts the MGF1 mask
    hashes and the fixed ``H = Hash(M')`` as well (ablation ``abl-mgf1``).
    """

    count_mgf1: bool = False
