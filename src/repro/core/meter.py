"""Crypto providers: the functional execution layer with optional metering.

The DRM actors (:mod:`repro.drm`) never call primitives directly — they go
through a *crypto provider*. Two providers exist:

* :class:`PlainCrypto` executes the real primitives from
  :mod:`repro.crypto` on real bytes.
* :class:`MeteredCrypto` does the same **and** appends an
  :class:`~repro.core.trace.OperationRecord` for every primitive batch, so
  a complete protocol run yields both its functional result and the
  operation list the paper's cost model prices.

Block accounting conventions (must match
:mod:`repro.usecases.workload`, which builds the same trace analytically):

* AES-CBC — one invocation (one key schedule), ``padded_octets / 16``
  blocks.
* AES Key Wrap (RFC 3394) — ``6 n`` single-block operations for ``n``
  64-bit registers; each counts as one invocation and one block, since
  wrap hardware issues them as individual block commands.
* SHA-1 — one invocation, ``ceil(octets / 16)`` 128-bit units over the
  message octets (Merkle–Damgård padding is ignored, exactly as the
  paper's per-128-bit normalization does).
* HMAC-SHA1 — one invocation (the Table 1 constant covers the fixed
  key-pad hashing), ``ceil(octets / 16)`` units over the message.
* RSA — one invocation and one 1024-bit block per modular exponentiation.
* RSASSA-PSS — one message hash plus one RSA operation (the paper's
  stated EMSA-PSS approximation); :class:`~repro.core.costs.CostOptions`
  ``count_mgf1`` additionally counts the fixed ``Hash(M')`` and the MGF1
  mask hashes.
* KEM (Figure 3) — one RSA operation, the KDF2 hash, and the AES wrap of
  the key payload.

The DRBG itself is not priced: random generation is not among the paper's
Table 1 algorithms.
"""

from contextlib import contextmanager
from typing import Iterator, Optional

from ..crypto import kdf, kem, keywrap, modes, pss, rsa
from ..crypto import rng as rng_mod
from ..crypto.hmac import hmac_sha1, verify_hmac_sha1
from ..crypto.sha1 import DIGEST_SIZE as _SHA1_DIGEST_SIZE
from ..crypto.sha1 import sha1 as _sha1
from ..obs.tracer import NULL_TRACER
from .costs import CostOptions
from .trace import Algorithm, OperationRecord, OperationTrace, Phase

#: 128-bit units per RFC 3447 MGF1 seed hash (seed 20 + counter 4 octets).
_MGF1_BLOCKS_PER_HASH = 2

#: 128-bit units of the fixed EMSA-PSS hash H = Hash(M'), |M'| = 48 octets.
_PSS_MPRIME_BLOCKS = 3


def units_128(octets: int) -> int:
    """Number of 128-bit units covering ``octets`` (Table 1 normalization)."""
    if octets < 0:
        raise ValueError("octet count must be non-negative")
    return (octets + 15) // 16


class PlainCrypto:
    """Un-metered crypto provider: real primitives, no bookkeeping.

    All randomness flows through the deterministic DRBG handed in at
    construction, so complete protocol runs are reproducible.
    """

    def __init__(self, rng: Optional[rng_mod.HmacDrbg] = None,
                 tracer=None) -> None:
        self.rng = rng if rng is not None else rng_mod.default_rng()
        self.tracer = tracer if tracer is not None else NULL_TRACER

    # -- randomness ------------------------------------------------------
    def random_bytes(self, length: int) -> bytes:
        """Fresh pseudo-random octets (keys, nonces, IVs, salts)."""
        return self.rng.random_bytes(length)

    # -- metering interface (no-op here) -----------------------------------
    @contextmanager
    def in_phase(self, phase: Phase) -> Iterator["PlainCrypto"]:
        """No-op phase context so callers can treat providers uniformly."""
        yield self

    # -- hashing and MACs ------------------------------------------------
    def sha1(self, data: bytes, label: str = "sha1") -> bytes:
        """SHA-1 digest of ``data``."""
        return _sha1(data)

    def hmac_sha1(self, key: bytes, data: bytes,
                  label: str = "hmac") -> bytes:
        """HMAC-SHA1 tag over ``data``."""
        return hmac_sha1(key, data)

    def hmac_verify(self, key: bytes, data: bytes, tag: bytes,
                    label: str = "hmac-verify") -> bool:
        """Constant-time HMAC-SHA1 verification."""
        return verify_hmac_sha1(key, data, tag)

    # -- symmetric encryption --------------------------------------------
    def aes_cbc_encrypt(self, key: bytes, iv: bytes, plaintext: bytes,
                        label: str = "cbc-encrypt") -> bytes:
        """AES-128-CBC with PKCS#7 padding (DCF content transform)."""
        return modes.cbc_encrypt(key, iv, plaintext)

    def aes_cbc_decrypt(self, key: bytes, iv: bytes, ciphertext: bytes,
                        label: str = "cbc-decrypt") -> bytes:
        """AES-128-CBC decryption with PKCS#7 unpadding."""
        return modes.cbc_decrypt(key, iv, ciphertext)

    def aes_cbc_decrypt_raw(self, key: bytes, iv: bytes,
                            ciphertext: bytes,
                            label: str = "cbc-decrypt-raw") -> bytes:
        """Unpadded AES-128-CBC decryption (streaming chunk path)."""
        return modes.cbc_decrypt_raw(key, iv, ciphertext)

    def aes_wrap(self, kek: bytes, key_material: bytes,
                 label: str = "key-wrap") -> bytes:
        """AES Key Wrap (RFC 3394)."""
        return keywrap.wrap(kek, key_material)

    def aes_unwrap(self, kek: bytes, wrapped: bytes,
                   label: str = "key-unwrap") -> bytes:
        """AES Key Unwrap with integrity check."""
        return keywrap.unwrap(kek, wrapped)

    # -- signatures -------------------------------------------------------
    def pss_sign(self, private_key: rsa.RSAPrivateKey, message: bytes,
                 label: str = "pss-sign") -> bytes:
        """RSASSA-PSS signature over ``message``."""
        return pss.pss_sign(private_key, message, self.rng)

    def pss_verify(self, public_key: rsa.RSAPublicKey, message: bytes,
                   signature: bytes, label: str = "pss-verify") -> None:
        """RSASSA-PSS verification; raises ``SignatureError`` on failure."""
        pss.pss_verify(public_key, message, signature)

    # -- key transport (Figure 3) ------------------------------------------
    def kem_encrypt(self, public_key: rsa.RSAPublicKey, key_material: bytes,
                    label: str = "kem-encrypt") -> kem.KemCiphertext:
        """RSAES-KEM + AES-WRAP encapsulation of ``key_material``."""
        return kem.kem_encrypt(public_key, key_material, self.rng)

    def kem_decrypt(self, private_key: rsa.RSAPrivateKey,
                    ciphertext: kem.KemCiphertext,
                    label: str = "kem-decrypt") -> bytes:
        """Recover KEM-encapsulated key material (Installation chain)."""
        return kem.kem_decrypt(private_key, ciphertext)


class MeteredCrypto(PlainCrypto):
    """Crypto provider that records every primitive batch into a trace.

    The current :class:`~repro.core.trace.Phase` is set with the
    :meth:`in_phase` context manager; operations executed outside any
    phase default to ``Phase.CONSUMPTION`` access work only if
    ``default_phase`` says so (the constructor default is REGISTRATION,
    the first phase of the consumption process).
    """

    def __init__(self, rng: Optional[rng_mod.HmacDrbg] = None,
                 options: CostOptions = CostOptions(),
                 default_phase: Phase = Phase.REGISTRATION,
                 tracer=None) -> None:
        super().__init__(rng, tracer=tracer)
        self.options = options
        self.trace = OperationTrace()
        self._phase = default_phase

    @property
    def phase(self) -> Phase:
        """The phase new records are tagged with."""
        return self._phase

    @contextmanager
    def in_phase(self, phase: Phase) -> Iterator["MeteredCrypto"]:
        """Tag all operations inside the ``with`` block with ``phase``."""
        previous = self._phase
        self._phase = phase
        try:
            yield self
        finally:
            self._phase = previous

    def reset_trace(self) -> OperationTrace:
        """Detach and return the accumulated trace, starting a fresh one."""
        trace = self.trace
        self.trace = OperationTrace()
        return trace

    def _record(self, algorithm: Algorithm, invocations: int, blocks: int,
                label: str) -> None:
        record = OperationRecord(
            algorithm=algorithm, phase=self._phase,
            invocations=invocations, blocks=blocks, label=label,
        )
        self.trace.append(record)
        self.tracer.on_record(record)

    # -- hashing and MACs ------------------------------------------------
    def sha1(self, data: bytes, label: str = "sha1") -> bytes:
        self._record(Algorithm.SHA1, 1, units_128(len(data)), label)
        return super().sha1(data)

    def hmac_sha1(self, key: bytes, data: bytes,
                  label: str = "hmac") -> bytes:
        self._record(Algorithm.HMAC_SHA1, 1, units_128(len(data)), label)
        return super().hmac_sha1(key, data)

    def hmac_verify(self, key: bytes, data: bytes, tag: bytes,
                    label: str = "hmac-verify") -> bool:
        self._record(Algorithm.HMAC_SHA1, 1, units_128(len(data)), label)
        return super().hmac_verify(key, data, tag)

    # -- symmetric encryption --------------------------------------------
    def aes_cbc_encrypt(self, key: bytes, iv: bytes, plaintext: bytes,
                        label: str = "cbc-encrypt") -> bytes:
        ciphertext = super().aes_cbc_encrypt(key, iv, plaintext)
        self._record(Algorithm.AES_ENCRYPT, 1,
                     len(ciphertext) // 16, label)
        return ciphertext

    def aes_cbc_decrypt(self, key: bytes, iv: bytes, ciphertext: bytes,
                        label: str = "cbc-decrypt") -> bytes:
        self._record(Algorithm.AES_DECRYPT, 1,
                     len(ciphertext) // 16, label)
        return super().aes_cbc_decrypt(key, iv, ciphertext)

    def aes_cbc_decrypt_raw(self, key: bytes, iv: bytes,
                            ciphertext: bytes,
                            label: str = "cbc-decrypt-raw") -> bytes:
        self._record(Algorithm.AES_DECRYPT, 1,
                     len(ciphertext) // 16, label)
        return super().aes_cbc_decrypt_raw(key, iv, ciphertext)

    def aes_wrap(self, kek: bytes, key_material: bytes,
                 label: str = "key-wrap") -> bytes:
        ops = keywrap.wrap_invocation_count(len(key_material))
        self._record(Algorithm.AES_ENCRYPT, ops, ops, label)
        return super().aes_wrap(kek, key_material)

    def aes_unwrap(self, kek: bytes, wrapped: bytes,
                   label: str = "key-unwrap") -> bytes:
        ops = keywrap.wrap_invocation_count(len(wrapped) - 8)
        self._record(Algorithm.AES_DECRYPT, ops, ops, label)
        return super().aes_unwrap(kek, wrapped)

    # -- signatures -------------------------------------------------------
    def _record_pss_encoding(self, modulus_octets: int, label: str) -> None:
        """Optionally count the EMSA-PSS fixed and MGF1 hashes."""
        if not self.options.count_mgf1:
            return
        mask_octets = modulus_octets - _SHA1_DIGEST_SIZE - 1
        mgf1_hashes = ((mask_octets + _SHA1_DIGEST_SIZE - 1)
                       // _SHA1_DIGEST_SIZE)
        self._record(Algorithm.SHA1, 1, _PSS_MPRIME_BLOCKS,
                     label + "/pss-mprime")
        self._record(Algorithm.SHA1, mgf1_hashes,
                     mgf1_hashes * _MGF1_BLOCKS_PER_HASH, label + "/mgf1")

    def pss_sign(self, private_key: rsa.RSAPrivateKey, message: bytes,
                 label: str = "pss-sign") -> bytes:
        self._record(Algorithm.SHA1, 1, units_128(len(message)),
                     label + "/message-hash")
        self._record_pss_encoding(private_key.modulus_octets, label)
        self._record(Algorithm.RSA_PRIVATE, 1, 1, label)
        return super().pss_sign(private_key, message)

    def pss_verify(self, public_key: rsa.RSAPublicKey, message: bytes,
                   signature: bytes, label: str = "pss-verify") -> None:
        self._record(Algorithm.SHA1, 1, units_128(len(message)),
                     label + "/message-hash")
        self._record_pss_encoding(public_key.modulus_octets, label)
        self._record(Algorithm.RSA_PUBLIC, 1, 1, label)
        super().pss_verify(public_key, message, signature)

    # -- key transport (Figure 3) ------------------------------------------
    def _record_kdf2(self, modulus_octets: int, label: str) -> None:
        """KDF2 over the modulus-length secret Z (one 16-octet KEK round)."""
        rounds = kdf.kdf2_hash_invocations(kem.KEK_LENGTH)
        blocks_per_round = units_128(modulus_octets + 4)
        self._record(Algorithm.SHA1, rounds, rounds * blocks_per_round,
                     label + "/kdf2")

    def kem_encrypt(self, public_key: rsa.RSAPublicKey, key_material: bytes,
                    label: str = "kem-encrypt") -> kem.KemCiphertext:
        self._record(Algorithm.RSA_PUBLIC, 1, 1, label + "/rsaep")
        self._record_kdf2(public_key.modulus_octets, label)
        ops = keywrap.wrap_invocation_count(len(key_material))
        self._record(Algorithm.AES_ENCRYPT, ops, ops, label + "/wrap")
        return super().kem_encrypt(public_key, key_material)

    def kem_decrypt(self, private_key: rsa.RSAPrivateKey,
                    ciphertext: kem.KemCiphertext,
                    label: str = "kem-decrypt") -> bytes:
        self._record(Algorithm.RSA_PRIVATE, 1, 1, label + "/rsadp")
        self._record_kdf2(private_key.modulus_octets, label)
        ops = keywrap.wrap_invocation_count(len(ciphertext.c2) - 8)
        self._record(Algorithm.AES_DECRYPT, ops, ops, label + "/unwrap")
        return super().kem_decrypt(private_key, ciphertext)
