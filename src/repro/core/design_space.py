"""Hardware/software design-space exploration.

The paper frames the architect's problem explicitly (§3): "find the
optimal tradeoff between [price, processing time and energy consumption]
when deciding on whether to support functionality in hardware or in
software", and closes §4 by questioning whether a PKI macro's transistor
cost is justified by the DRM workload. This module turns that framing
into a tool: enumerate every macro subset, attach a gate-cost estimate,
price a workload under each, and extract the Pareto frontier over
(gates, time) or (gates, energy).

Gate-cost estimates are kept as data (:class:`MacroCosts`) with defaults
drawn from the literature of the period — an AES core around 25 kgates
(Satoh-style composite-field designs), a compact SHA-1 core around
20 kgates, a 1024-bit Montgomery RSA datapath in the 100 kgate class
(the paper's reference [7]) — and are meant to be overridden with the
architect's own numbers.
"""

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from .architecture import ArchitectureProfile, DEFAULT_CLOCK_HZ, \
    custom_profile
from .energy import WeightedEnergyModel
from .model import PerformanceModel
from .trace import Algorithm, OperationTrace

#: The three independently sizeable macro blocks.
MACRO_AES = "AES"
MACRO_SHA1 = "SHA1"
MACRO_RSA = "RSA"

MACRO_BLOCKS: Mapping[str, Tuple[Algorithm, ...]] = {
    MACRO_AES: (Algorithm.AES_ENCRYPT, Algorithm.AES_DECRYPT),
    MACRO_SHA1: (Algorithm.SHA1, Algorithm.HMAC_SHA1),
    MACRO_RSA: (Algorithm.RSA_PUBLIC, Algorithm.RSA_PRIVATE),
}


@dataclass(frozen=True)
class MacroCosts:
    """Kilogate estimates per macro block (override with your own)."""

    aes_kgates: float = 25.0
    sha1_kgates: float = 20.0
    rsa_kgates: float = 100.0

    def kgates(self, macros: Sequence[str]) -> float:
        """Total kilogates for a set of macro blocks."""
        table = {MACRO_AES: self.aes_kgates,
                 MACRO_SHA1: self.sha1_kgates,
                 MACRO_RSA: self.rsa_kgates}
        return sum(table[m] for m in macros)


@dataclass(frozen=True)
class DesignPoint:
    """One macro subset priced against one workload."""

    macros: Tuple[str, ...]
    kgates: float
    time_ms: float
    energy_mj: float
    profile: ArchitectureProfile = field(compare=False, repr=False,
                                         default=None)

    @property
    def name(self) -> str:
        """Human-readable macro-set name."""
        return "+".join(self.macros) if self.macros else "SW-only"


def profile_for_macros(macros: Sequence[str],
                       clock_hz: int = DEFAULT_CLOCK_HZ
                       ) -> ArchitectureProfile:
    """Build an architecture profile with the given macro blocks."""
    hardware = {}
    for macro in macros:
        for algorithm in MACRO_BLOCKS[macro]:
            hardware[algorithm] = True
    name = "+".join(macros) if macros else "SW-only"
    return custom_profile(name, hardware, clock_hz=clock_hz)


def enumerate_design_points(trace: OperationTrace,
                            costs: MacroCosts = MacroCosts(),
                            model: Optional[PerformanceModel] = None,
                            energy_model: Optional[WeightedEnergyModel]
                            = None,
                            clock_hz: int = DEFAULT_CLOCK_HZ
                            ) -> List[DesignPoint]:
    """Price ``trace`` under all 8 macro subsets.

    Returns points sorted by gate cost, then time.
    """
    if model is None:
        model = PerformanceModel()
    if energy_model is None:
        energy_model = WeightedEnergyModel()
    points = []
    blocks = sorted(MACRO_BLOCKS)
    for r in range(len(blocks) + 1):
        for macros in itertools.combinations(blocks, r):
            profile = profile_for_macros(macros, clock_hz)
            breakdown = model.evaluate(trace, profile)
            points.append(DesignPoint(
                macros=macros,
                kgates=costs.kgates(macros),
                time_ms=breakdown.total_ms,
                energy_mj=energy_model.joules(breakdown) * 1000.0,
                profile=profile,
            ))
    return sorted(points, key=lambda p: (p.kgates, p.time_ms))


def pareto_frontier(points: Sequence[DesignPoint],
                    objective: str = "time") -> List[DesignPoint]:
    """The Pareto-optimal subset over (kgates, time or energy).

    A point survives if no other point is at least as cheap in gates AND
    strictly better on the objective.
    """
    if objective == "time":
        def value(p):
            return p.time_ms
    elif objective == "energy":
        def value(p):
            return p.energy_mj
    else:
        raise ValueError("objective must be 'time' or 'energy'")

    ordered = sorted(points, key=lambda p: (p.kgates, value(p)))
    frontier: List[DesignPoint] = []
    best = float("inf")
    for point in ordered:
        if value(point) < best:
            # Skip gate-cost ties: the first (cheapest-objective) wins.
            if frontier and frontier[-1].kgates == point.kgates:
                continue
            frontier.append(point)
            best = value(point)
    return frontier


def cheapest_within_budget(points: Sequence[DesignPoint],
                           budget_ms: float) -> Optional[DesignPoint]:
    """The fewest-gates design meeting a latency budget, or None."""
    feasible = [p for p in points if p.time_ms <= budget_ms]
    if not feasible:
        return None
    return min(feasible, key=lambda p: (p.kgates, p.time_ms))


def marginal_value(points: Sequence[DesignPoint]
                   ) -> Dict[str, Dict[str, float]]:
    """Per-macro speedup when added to the software-only baseline.

    Quantifies the paper's §4 discussion: how much does each individual
    macro buy, per kilogate, for this workload?
    """
    by_macros = {p.macros: p for p in points}
    baseline = by_macros[()]
    result = {}
    for macro in sorted(MACRO_BLOCKS):
        point = by_macros[(macro,)]
        saved_ms = baseline.time_ms - point.time_ms
        result[macro] = {
            "speedup": baseline.time_ms / point.time_ms,
            "saved_ms": saved_ms,
            "saved_ms_per_kgate": saved_ms / point.kgates,
        }
    return result
