"""``repro.lint`` — invariant analyzer with interprocedural dataflow.

The paper's cost model is only trustworthy if every crypto operation a
protocol run performs is priced, and the fleet engine is only useful if
shard merges stay bit-identical. Both are *invariants of the codebase*;
this package enforces them statically instead of by convention — since
PR 8 with a whole-program call graph (:mod:`repro.lint.callgraph`) and
a forward taint engine with per-function summaries
(:mod:`repro.lint.dataflow`), not just per-function syntax checks.

Rule families (see :mod:`repro.lint.rules` and
``docs/static-analysis.md``):

* **REP1xx determinism** — no wall-clock reads, OS entropy, unseeded
  RNGs, or set-iteration-order leaks in priced or sharded paths
  (``repro.usecases``, ``repro.analysis``).
* **REP2xx metering completeness** — ``repro.drm``/``repro.sim`` must
  route all crypto through the :class:`~repro.core.meter.PlainCrypto` /
  :class:`~repro.core.meter.MeteredCrypto` provider: no direct
  :mod:`repro.crypto` primitive imports (REP201), and *no call path*
  reaching a primitive around the provider — proven by reachability
  over the call graph, with the uncovered path as evidence (REP202).
* **REP3xx secret hygiene** — no variable-time ``==`` on digest/tag
  bytes inside ``repro.crypto`` (REP302).
* **REP4xx error contracts** — no bare ``except:``, no silent
  ``except ...: pass`` in protocol code, typed
  :class:`~repro.drm.errors.WireDecodeError` in wire-decode paths.
* **REP5xx durability**, **REP6xx observability**, **REP7xx trust** —
  journal discipline, no ``print``/``logging`` in library layers, no
  swallowed trust errors.
* **REP8xx secret taint** — key material (CEK/KEK/REK fields, private
  keys, DRBG outputs) tracked through assignments and helper calls
  into exception messages, trace attributes, metrics labels, logs, and
  JSON output; interprocedural findings carry the call path (REP801,
  superseding the old syntactic REP301).
* **REP9xx sim resource protocol** — ``Acquire`` grants released on
  exception paths (REP901), no nested-acquire deadlock hazards
  (REP902), kernel-owned scheduler state mutated only by the kernel
  (REP903).

Findings can be fixed, suppressed inline with a *justified*
``# repro: allow[REPnnn] -- reason`` comment, or grandfathered in the
committed baseline file. Run ``python -m repro lint src/`` (``--jobs
N`` shards across processes with bit-identical output, ``--format
sarif`` for code-scanning upload).
"""

from .baseline import Baseline
from .config import LintConfig, RuleConfig
from .engine import Finding, LintEngine, LintResult
from .reporters import render_json, render_sarif, render_text
from .rules import all_rules

__all__ = [
    "Baseline", "Finding", "LintConfig", "LintEngine", "LintResult",
    "RuleConfig", "all_rules", "render_json", "render_sarif",
    "render_text",
]
