"""``repro.lint`` — AST-based invariant analyzer for this repository.

The paper's cost model is only trustworthy if every crypto operation a
protocol run performs is priced, and the fleet engine is only useful if
shard merges stay bit-identical. Both are *invariants of the codebase*;
this package enforces them statically instead of by convention.

Four rule families (see :mod:`repro.lint.rules` and
``docs/static-analysis.md``):

* **REP1xx determinism** — no wall-clock reads, OS entropy, unseeded
  RNGs, or set-iteration-order leaks in priced or sharded paths
  (``repro.usecases``, ``repro.analysis``).
* **REP2xx metering completeness** — ``repro.drm`` must route all crypto
  through the :class:`~repro.core.meter.PlainCrypto` /
  :class:`~repro.core.meter.MeteredCrypto` provider, never call
  :mod:`repro.crypto` primitives directly (REP201) or reach them
  through an intermediary module (REP202, via the import graph and
  per-function call summaries in :mod:`repro.lint.graph`).
* **REP3xx secret hygiene** — no key material interpolated into strings,
  logs, or exception messages; no variable-time ``==`` on digest/tag
  bytes inside ``repro.crypto``.
* **REP4xx error contracts** — no bare ``except:``, no silent
  ``except ...: pass`` in protocol code, typed
  :class:`~repro.drm.errors.WireDecodeError` in wire-decode paths.

Findings can be fixed, suppressed inline with a *justified*
``# repro: allow[REPnnn] -- reason`` comment, or grandfathered in the
committed baseline file. Run ``python -m repro lint src/``.
"""

from .baseline import Baseline
from .config import LintConfig, RuleConfig
from .engine import Finding, LintEngine, LintResult
from .reporters import render_json, render_text
from .rules import all_rules

__all__ = [
    "Baseline", "Finding", "LintConfig", "LintEngine", "LintResult",
    "RuleConfig", "all_rules", "render_json", "render_text",
]
