"""The ``python -m repro lint`` command.

Exit codes: 0 clean (no new findings), 1 new findings, 2 usage error —
so CI can gate on the exit status while parsing ``--format json`` for
attribution.
"""

import argparse
import json
import os
import sys
from typing import List

from .baseline import Baseline
from .config import LintConfig
from .engine import LintEngine
from .reporters import render_json, render_sarif, render_text
from .rules import all_rules


def add_arguments(parser: argparse.ArgumentParser) -> None:
    """Register the lint command's arguments on ``parser``."""
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to analyze "
                             "(default: src)")
    parser.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text", help="report format")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="shard module analysis across N forked "
                             "workers (output is bit-identical to "
                             "--jobs 1)")
    parser.add_argument("--baseline", metavar="PATH", default=None,
                        help="baseline file (default: lint-baseline.json "
                             "or [tool.repro-lint] baseline)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore the baseline; report every finding")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline from the current "
                             "findings and exit 0")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the registered rules and exit")


def _list_rules() -> int:
    for rule in all_rules():
        scopes = ", ".join(rule.default_scopes) or "(everywhere)"
        print("%s  %s" % (rule.id, rule.title))
        print("        scope: %s" % scopes)
    return 0


def run(args: argparse.Namespace) -> int:
    """Execute the lint command; returns the process exit code."""
    if args.list_rules:
        return _list_rules()

    config = LintConfig.from_pyproject("pyproject.toml")
    baseline_path = args.baseline or config.baseline_path

    paths = args.paths or ["src"]
    missing = [path for path in paths if not os.path.exists(path)]
    if missing:
        print("error: no such path: %s" % ", ".join(missing),
              file=sys.stderr)
        return 2

    engine = LintEngine(config=config)
    if args.no_baseline:
        baseline = Baseline()
    else:
        try:
            baseline = Baseline.load(baseline_path)
        except ValueError as error:
            print("error: %s" % error, file=sys.stderr)
            return 2
    if args.jobs < 1:
        print("error: --jobs must be at least 1", file=sys.stderr)
        return 2
    result = engine.run(paths, baseline=baseline, jobs=args.jobs)

    if args.update_baseline:
        Baseline.save(baseline_path, result.all_current)
        print("baseline written to %s (%d finding(s) grandfathered)"
              % (baseline_path, len(result.all_current)))
        return 0

    if args.format == "json":
        print(json.dumps(render_json(result), indent=2, sort_keys=True))
    elif args.format == "sarif":
        print(json.dumps(render_sarif(result), indent=2,
                         sort_keys=True))
    else:
        print(render_text(result))
    return 0 if result.clean else 1


def main(argv: List[str] = None) -> int:  # pragma: no cover - thin shim
    """Standalone entry point (``python -m repro.lint.cli``)."""
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="AST-based invariant analyzer for this repository")
    add_arguments(parser)
    return run(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
