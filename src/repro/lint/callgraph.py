"""Whole-program call graph over every scanned module.

PR 3's :mod:`repro.lint.graph` stops at one level of indirection: a
per-module import table plus the set of functions that touch crypto
directly. That is enough to make a metering bypass *deliberate*, but it
cannot *prove* anything — a ``repro.drm`` entry point can still reach a
primitive through two helpers, and a secret can flow through a
formatting helper into a span attribute without any single module
looking wrong. This module builds the structure those proofs need:

* a **function registry**: every function and method definition in the
  scanned tree, keyed by qualified name (``repro.drm.agent.DRMAgent.
  install``), with its parameter list;
* a **class registry**: methods and (project-resolvable) base classes,
  so ``self.helper()`` and single-module inheritance resolve;
* **call edges**: for every call site, the qualified name it resolves
  to — through ``from x import y`` aliases, ``import x as z`` module
  aliases, relative imports, local ``f = g`` rebindings, ``self.``
  method dispatch, and locally constructed instances
  (``obj = ClassName(...); obj.method()``);
* **reference edges**: a bare ``Name`` load of a known function outside
  call position (passed as a callback, stored in a table) becomes a
  conservative potential-call edge, so first-class function use never
  hides a path.

Unresolvable targets (calls on call results, attribute chains whose
root is unknown) keep their dotted path when one can be printed —
``repro.crypto.sha1.sha1`` stays classifiable as a crypto primitive by
prefix even when the crypto tree itself is outside the scanned paths
(fixture trees in tests) — and are dropped otherwise.

Everything is built and iterated in sorted order: two builds over the
same files are identical, regardless of file discovery order
(``tests/lint/test_callgraph.py`` holds this under Hypothesis).
"""

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .graph import ModuleSummary

#: Receiver names treated as the current instance inside a method.
_SELF_NAMES = frozenset({"self", "cls"})


@dataclass(frozen=True)
class FunctionNode:
    """One function or method definition in the scanned tree."""

    qualname: str              # repro.drm.agent.DRMAgent.install
    module: str                # repro.drm.agent
    name: str                  # DRMAgent.install (module-relative)
    line: int
    params: Tuple[str, ...]    # declared names, self/cls stripped
    is_method: bool = False
    is_generator: bool = False
    owner_class: Optional[str] = None   # qualname of the owning class
    #: Identifiers this function's own body tests with ``is``/``is
    #: not`` — the sentinel checks (REJECTED, TIMED_OUT, None, ...)
    #: interprocedural rules consult without re-reading the module's
    #: AST (REP904 asks whether a *caller* checks the expiry sentinel
    #: of a value it received).
    sentinel_tests: Tuple[str, ...] = ()


@dataclass(frozen=True)
class CallSite:
    """One resolved call (or reference) edge out of a function."""

    caller: str                # caller qualname
    callee: str                # project qualname or external dotted path
    line: int
    resolved: bool             # True when callee is a scanned function
    is_reference: bool = False  # bare-name reference, not a call


@dataclass
class ClassInfo:
    """One class definition: its methods and resolvable bases."""

    qualname: str
    module: str
    name: str
    bases: Tuple[str, ...] = ()         # resolved base qualnames
    methods: Dict[str, str] = field(default_factory=dict)  # name -> fn


class CallGraph:
    """Functions, classes and call edges for the whole scanned tree."""

    def __init__(self) -> None:
        self.functions: Dict[str, FunctionNode] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self._edges: Dict[str, List[CallSite]] = {}
        #: module -> sorted names of module-level functions
        self._module_functions: Dict[str, Set[str]] = {}

    # -- construction ------------------------------------------------------
    def add_function(self, node: FunctionNode) -> None:
        self.functions[node.qualname] = node
        self._edges.setdefault(node.qualname, [])
        if not node.is_method:
            self._module_functions.setdefault(node.module,
                                              set()).add(node.name)

    def add_edge(self, site: CallSite) -> None:
        self._edges.setdefault(site.caller, []).append(site)

    def finalize(self) -> None:
        """Sort every edge list; the graph is append-only before this."""
        for caller in self._edges:
            self._edges[caller].sort(
                key=lambda s: (s.line, s.callee, s.is_reference))

    # -- queries -----------------------------------------------------------
    def edges_from(self, qualname: str) -> Tuple[CallSite, ...]:
        return tuple(self._edges.get(qualname, ()))

    def function(self, qualname: str) -> Optional[FunctionNode]:
        return self.functions.get(qualname)

    def functions_in_module(self, module: str) -> List[FunctionNode]:
        return sorted((fn for fn in self.functions.values()
                       if fn.module == module),
                      key=lambda fn: (fn.line, fn.qualname))

    def sorted_functions(self) -> List[FunctionNode]:
        return [self.functions[name] for name in sorted(self.functions)]

    def method_on(self, class_qualname: str,
                  method: str) -> Optional[str]:
        """Resolve ``method`` on a class or its project-visible bases."""
        seen = set()
        queue = [class_qualname]
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            info = self.classes.get(current)
            if info is None:
                continue
            if method in info.methods:
                return info.methods[method]
            queue.extend(info.bases)
        return None


class _ModuleIndexer(ast.NodeVisitor):
    """First pass: register every function, method and class."""

    def __init__(self, graph: CallGraph, module: str) -> None:
        self.graph = graph
        self.module = module
        self._class_stack: List[ClassInfo] = []
        self._func_stack: List[str] = []

    def _qualify(self, name: str) -> str:
        inner = [part for part in self._func_stack] + [name]
        if self._class_stack:
            prefix = self._class_stack[-1].qualname
            return "%s.%s" % (prefix, ".".join(inner))
        return "%s.%s" % (self.module, ".".join(inner))

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        qualname = self._qualify(node.name)
        info = ClassInfo(qualname=qualname, module=self.module,
                         name=node.name)
        self.graph.classes[qualname] = info
        self._class_stack.append(info)
        self.generic_visit(node)
        self._class_stack.pop()

    def _visit_function(self, node) -> None:
        qualname = self._qualify(node.name)
        params = [arg.arg for arg in (node.args.posonlyargs
                                      + node.args.args
                                      + node.args.kwonlyargs)]
        is_method = bool(self._class_stack) and not self._func_stack
        if is_method and params and params[0] in _SELF_NAMES:
            params = params[1:]
        is_generator = _generator_check(node)
        owner = self._class_stack[-1].qualname if is_method else None
        relative = qualname[len(self.module) + 1:]
        self.graph.add_function(FunctionNode(
            qualname=qualname, module=self.module, name=relative,
            line=node.lineno, params=tuple(params),
            is_method=is_method, is_generator=is_generator,
            owner_class=owner,
            sentinel_tests=_sentinel_tests(node)))
        if is_method:
            self._class_stack[-1].methods[node.name] = qualname
        self._func_stack.append(node.name)
        self.generic_visit(node)
        self._func_stack.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function


def _sentinel_tests(node) -> Tuple[str, ...]:
    """Identifiers this function tests with ``is``/``is not``.

    Only the function's own body counts (nested defs are indexed as
    their own nodes): an ``outcome is TIMED_OUT`` in a helper does not
    make the enclosing function a sentinel checker.
    """
    found: Set[str] = set()

    def walk(current) -> None:
        for child in ast.iter_child_nodes(current):
            if isinstance(child, (ast.FunctionDef,
                                  ast.AsyncFunctionDef, ast.Lambda)):
                continue
            if isinstance(child, ast.Compare) \
                    and any(isinstance(op, (ast.Is, ast.IsNot))
                            for op in child.ops):
                for comparator in [child.left] + child.comparators:
                    if isinstance(comparator, ast.Name):
                        found.add(comparator.id)
                    elif isinstance(comparator, ast.Attribute):
                        found.add(comparator.attr)
            walk(child)

    walk(node)
    return tuple(sorted(found))


def _generator_check(node) -> bool:
    """Whether ``node`` itself (not a nested def) contains a yield."""
    for child in ast.iter_child_nodes(node):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                              ast.Lambda)):
            continue
        if isinstance(child, (ast.Yield, ast.YieldFrom)):
            return True
        if _generator_check(child):
            return True
    return False


class _EdgeBuilder(ast.NodeVisitor):
    """Second pass over one function body: resolve its call sites."""

    def __init__(self, graph: CallGraph, module: str,
                 summary: ModuleSummary, caller: FunctionNode,
                 body) -> None:
        self.graph = graph
        self.module = module
        self.summary = summary
        self.caller = caller
        #: local name -> qualname/dotted path of a function it aliases
        self.local_functions: Dict[str, str] = {}
        #: local name -> class qualname it instantiates
        self.local_instances: Dict[str, str] = {}
        self._body = body

    # -- name resolution ---------------------------------------------------
    def _resolve_name(self, name: str) -> Optional[Tuple[str, bool]]:
        """(target, resolved) for a bare name used as a callable."""
        if name in self.local_functions:
            target = self.local_functions[name]
            return target, target in self.graph.functions
        module_level = "%s.%s" % (self.module, name)
        if module_level in self.graph.functions:
            return module_level, True
        if module_level in self.graph.classes:
            return self._class_target(module_level)
        imported = self.summary.imports.get(name)
        if imported is not None and imported.symbol is not None:
            dotted = "%s.%s" % (imported.module, imported.symbol)
            return self._project_or_external(dotted)
        return None

    def _resolve_function_reference(self, name: str) -> Optional[str]:
        """A bare name that stands for a *function* (never a class)."""
        if name in self.local_functions:
            target = self.local_functions[name]
            if target in self.graph.functions:
                return target
            return None
        module_level = "%s.%s" % (self.module, name)
        if module_level in self.graph.functions:
            return module_level
        imported = self.summary.imports.get(name)
        if imported is not None and imported.symbol is not None:
            dotted = "%s.%s" % (imported.module, imported.symbol)
            if dotted in self.graph.functions:
                return dotted
        return None

    def _class_target(self, class_qualname: str) -> Tuple[str, bool]:
        """Calling a class: edge to its __init__ when it has one."""
        init = self.graph.method_on(class_qualname, "__init__")
        if init is not None:
            return init, True
        return class_qualname, class_qualname in self.graph.classes

    def _project_or_external(self, dotted: str) -> Tuple[str, bool]:
        if dotted in self.graph.functions:
            return dotted, True
        if dotted in self.graph.classes:
            return self._class_target(dotted)
        return dotted, False

    def _resolve_attribute_call(self, func: ast.Attribute
                                ) -> Optional[Tuple[str, bool]]:
        # self.method() / cls.method() inside a class body.
        if isinstance(func.value, ast.Name) \
                and func.value.id in _SELF_NAMES \
                and self.caller.owner_class is not None:
            method = self.graph.method_on(self.caller.owner_class,
                                          func.attr)
            if method is not None:
                return method, True
            return None
        # obj.method() on a locally constructed instance.
        if isinstance(func.value, ast.Name) \
                and func.value.id in self.local_instances:
            owner = self.local_instances[func.value.id]
            method = self.graph.method_on(owner, func.attr)
            if method is not None:
                return method, True
            return None
        # module-alias attribute chains: dt.now(), repro.crypto.sha1.sha1().
        dotted = self.summary.dotted_call_path(
            ast.Call(func=func, args=[], keywords=[]))
        if dotted is None:
            return None
        if "." not in dotted:
            return None
        # The dotted path has the *substituted* root (``dt.now`` →
        # ``datetime.now``); the import-table key is the original
        # receiver name, so unroll the chain back to it.
        cursor = func.value
        while isinstance(cursor, ast.Attribute):
            cursor = cursor.value
        if not isinstance(cursor, ast.Name):
            return None
        imported = self.summary.imports.get(cursor.id)
        if imported is None:
            # A plain object attribute (agent.storage.install) whose
            # receiver we know nothing about: no edge.
            return None
        # Attribute on an imported module (plain or via ``from package
        # import module as alias``) or symbol (Class.method).
        return self._project_or_external(dotted)

    # -- statement tracking ------------------------------------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        self._track_binding(node.targets, node.value)
        self.generic_visit(node)

    def _track_binding(self, targets, value) -> None:
        if len(targets) != 1 or not isinstance(targets[0], ast.Name):
            return
        name = targets[0].id
        if isinstance(value, ast.Name):
            resolved = self._resolve_name(value.id)
            if resolved is not None:
                self.local_functions[name] = resolved[0]
            return
        if isinstance(value, ast.Call) \
                and isinstance(value.func, ast.Name):
            resolved = self._resolve_name(value.func.id)
            if resolved is not None:
                target = resolved[0]
                fn = self.graph.functions.get(target)
                if fn is not None and fn.name.endswith("__init__") \
                        and fn.owner_class is not None:
                    self.local_instances[name] = fn.owner_class
                elif target in self.graph.classes:
                    self.local_instances[name] = target

    # -- call and reference edges ------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        target: Optional[Tuple[str, bool]] = None
        if isinstance(node.func, ast.Name):
            target = self._resolve_name(node.func.id)
            # The callee Name is a call, not a first-class reference.
            self._callee_names.add(id(node.func))
        elif isinstance(node.func, ast.Attribute):
            target = self._resolve_attribute_call(node.func)
        if target is not None:
            callee, resolved = target
            self.graph.add_edge(CallSite(
                caller=self.caller.qualname, callee=callee,
                line=node.lineno, resolved=resolved))
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        """Bare Name loads of known functions are reference edges."""
        if id(node) in self._callee_names \
                or not isinstance(node.ctx, ast.Load):
            return
        target = self._resolve_function_reference(node.id)
        if target is None:
            return
        self.graph.add_edge(CallSite(
            caller=self.caller.qualname, callee=target,
            line=node.lineno, resolved=True, is_reference=True))

    def visit_FunctionDef(self, node) -> None:
        # Nested definitions get their own _EdgeBuilder pass.
        return

    visit_AsyncFunctionDef = visit_FunctionDef

    def run(self) -> None:
        self._callee_names: Set[int] = set()
        for statement in self._body:
            self.visit(statement)


def _base_name(graph: CallGraph, summary: ModuleSummary, module: str,
               base: ast.expr) -> Optional[str]:
    """Resolve a class base expression to a project class qualname."""
    if isinstance(base, ast.Name):
        local = "%s.%s" % (module, base.id)
        if local in graph.classes:
            return local
        imported = summary.imports.get(base.id)
        if imported is not None and imported.symbol is not None:
            dotted = "%s.%s" % (imported.module, imported.symbol)
            if dotted in graph.classes:
                return dotted
            return dotted
    elif isinstance(base, ast.Attribute) \
            and isinstance(base.value, ast.Name):
        imported = summary.imports.get(base.value.id)
        if imported is not None and imported.symbol is None:
            return "%s.%s" % (imported.module, base.attr)
    return None


def build_call_graph(modules: Sequence[Tuple[str, ast.AST,
                                             ModuleSummary]]
                     ) -> CallGraph:
    """Build the project call graph from (name, tree, summary) triples.

    The result is independent of the order of ``modules``: both passes
    iterate a sorted copy, and edge lists are sorted at the end.
    """
    ordered = sorted(modules, key=lambda entry: entry[0])
    graph = CallGraph()
    # Pass 1: register every definition so cross-module calls resolve.
    for name, tree, _summary in ordered:
        _ModuleIndexer(graph, name).visit(tree)
    # Pass 1b: resolve class bases now that every class is known.
    for name, tree, summary in ordered:
        def resolve_bases(node, path):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.ClassDef):
                    qualname = ".".join(path + [child.name])
                    info = graph.classes.get(qualname)
                    if info is not None:
                        info.bases = tuple(
                            resolved for resolved in
                            (_base_name(graph, summary, name, base)
                             for base in child.bases)
                            if resolved is not None)
                    resolve_bases(child, path + [child.name])
                elif isinstance(child, (ast.FunctionDef,
                                        ast.AsyncFunctionDef)):
                    resolve_bases(child, path + [child.name])
                else:
                    resolve_bases(child, path)
        resolve_bases(tree, [name])
    # Pass 2: edges, function by function in definition order.
    for name, tree, summary in ordered:
        _build_module_edges(graph, name, tree, summary)
    graph.finalize()
    return graph


def _build_module_edges(graph: CallGraph, module: str, tree: ast.AST,
                        summary: ModuleSummary) -> None:
    def walk(node, class_stack: Tuple[str, ...],
             func_stack: Tuple[str, ...]) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                walk(child, class_stack + (child.name,), func_stack)
            elif isinstance(child, (ast.FunctionDef,
                                    ast.AsyncFunctionDef)):
                inner = ".".join(class_stack + func_stack
                                 + (child.name,))
                qualname = "%s.%s" % (module, inner)
                caller = graph.functions.get(qualname)
                if caller is not None:
                    _EdgeBuilder(graph, module, summary, caller,
                                 child.body).run()
                walk(child, class_stack, func_stack + (child.name,))
            else:
                walk(child, class_stack, func_stack)

    walk(tree, (), ())
