"""Finding reporters: human text, machine JSON, and SARIF.

The JSON document is the CI interface; its shape is pinned by
``tests/lint/test_reporters.py``::

    {
      "version": 1,
      "findings": [{"rule", "path", "line", "column", "message",
                    "fingerprint"}, ...],
      "counts": {"REP201": 2, ...},
      "summary": {"new": 2, "baselined": 0, "suppressed": 1,
                  "files": 40, "clean": false}
    }

The SARIF 2.1.0 document (``--format sarif``) is what the CI lint job
uploads so findings render as GitHub code-scanning annotations; its
shape is pinned by the golden snapshot in
``tests/lint/test_reporters.py``.
"""

from collections import Counter
from typing import Dict

from .baseline import assign_fingerprints
from .engine import LintResult

#: Schema version of the JSON report.
REPORT_VERSION = 1

#: SARIF specification version emitted by :func:`render_sarif`.
SARIF_VERSION = "2.1.0"

_SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/"
                 "sarif-spec/master/Schemata/sarif-schema-2.1.0.json")


def render_text(result: LintResult) -> str:
    """Human-readable report: one line per finding plus a summary."""
    lines = [finding.render() for finding in result.findings]
    summary = ("%d finding(s) in %d file(s) "
               "(%d baselined, %d suppressed)"
               % (len(result.findings), result.files_scanned,
                  len(result.baselined), len(result.suppressed)))
    if result.clean:
        summary = ("clean: 0 new findings in %d file(s) "
                   "(%d baselined, %d suppressed)"
                   % (result.files_scanned, len(result.baselined),
                      len(result.suppressed)))
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: LintResult) -> Dict:
    """The machine-readable report dictionary (see module docstring)."""
    findings = []
    for finding, print_ in zip(result.findings,
                               assign_fingerprints(result.findings)):
        findings.append({
            "rule": finding.rule,
            "path": finding.path.replace("\\", "/"),
            "line": finding.line,
            "column": finding.column,
            "message": finding.message,
            "fingerprint": print_,
        })
    counts = Counter(finding.rule for finding in result.findings)
    return {
        "version": REPORT_VERSION,
        "findings": findings,
        "counts": dict(sorted(counts.items())),
        "summary": {
            "new": len(result.findings),
            "baselined": len(result.baselined),
            "suppressed": len(result.suppressed),
            "files": result.files_scanned,
            "clean": result.clean,
        },
    }


def render_sarif(result: LintResult) -> Dict:
    """SARIF 2.1.0 run for GitHub code-scanning upload.

    New findings become ``results`` (level ``error`` — they fail the
    gate); the rule metadata of every *fired* rule is embedded in the
    driver so annotations carry the invariant description. SARIF
    ``startColumn`` is 1-based where the engine's columns are 0-based.
    """
    from .rules import all_rules

    fired = sorted({finding.rule for finding in result.findings})
    titles = {rule.id: rule.title for rule in all_rules()}
    rules = [{
        "id": rule_id,
        "shortDescription": {
            "text": titles.get(rule_id, "analyzer meta-finding"),
        },
    } for rule_id in fired]
    results = []
    for finding, print_ in zip(result.findings,
                               assign_fingerprints(result.findings)):
        results.append({
            "ruleId": finding.rule,
            "level": "error",
            "message": {"text": finding.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path.replace("\\", "/"),
                    },
                    "region": {
                        "startLine": finding.line,
                        "startColumn": finding.column + 1,
                    },
                },
            }],
            "partialFingerprints": {"reproLint/v1": print_},
        })
    return {
        "$schema": _SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro-lint",
                    "informationUri":
                        "docs/static-analysis.md",
                    "rules": rules,
                },
            },
            "results": results,
        }],
    }
