"""Finding reporters: human text and machine JSON.

The JSON document is the CI interface; its shape is pinned by
``tests/lint/test_reporters.py``::

    {
      "version": 1,
      "findings": [{"rule", "path", "line", "column", "message",
                    "fingerprint"}, ...],
      "counts": {"REP201": 2, ...},
      "summary": {"new": 2, "baselined": 0, "suppressed": 1,
                  "files": 40, "clean": false}
    }
"""

from collections import Counter
from typing import Dict

from .baseline import assign_fingerprints
from .engine import LintResult

#: Schema version of the JSON report.
REPORT_VERSION = 1


def render_text(result: LintResult) -> str:
    """Human-readable report: one line per finding plus a summary."""
    lines = [finding.render() for finding in result.findings]
    summary = ("%d finding(s) in %d file(s) "
               "(%d baselined, %d suppressed)"
               % (len(result.findings), result.files_scanned,
                  len(result.baselined), len(result.suppressed)))
    if result.clean:
        summary = ("clean: 0 new findings in %d file(s) "
                   "(%d baselined, %d suppressed)"
                   % (result.files_scanned, len(result.baselined),
                      len(result.suppressed)))
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: LintResult) -> Dict:
    """The machine-readable report dictionary (see module docstring)."""
    findings = []
    for finding, print_ in zip(result.findings,
                               assign_fingerprints(result.findings)):
        findings.append({
            "rule": finding.rule,
            "path": finding.path.replace("\\", "/"),
            "line": finding.line,
            "column": finding.column,
            "message": finding.message,
            "fingerprint": print_,
        })
    counts = Counter(finding.rule for finding in result.findings)
    return {
        "version": REPORT_VERSION,
        "findings": findings,
        "counts": dict(sorted(counts.items())),
        "summary": {
            "new": len(result.findings),
            "baselined": len(result.baselined),
            "suppressed": len(result.suppressed),
            "files": result.files_scanned,
            "clean": result.clean,
        },
    }
