"""The analyzer core: scan, parse, run rules, suppress, baseline.

The pipeline for one invocation:

1. collect ``.py`` files from the given paths (directories are walked,
   ``__pycache__`` and dotted directories skipped);
2. parse each file once, derive its dotted module name (``src/`` and
   everything above the last ``repro``/``src`` path component is
   stripped, so ``src/repro/drm/session.py`` → ``repro.drm.session``
   and fixture trees like ``tmp/repro/drm/x.py`` scope identically);
3. build the :class:`~repro.lint.graph.ProjectGraph` of per-module
   import tables and crypto call summaries;
4. run every enabled rule over every module inside its scope;
5. drop findings covered by a *justified* inline suppression, report
   defective suppressions (REP001/REP002) as findings;
6. fingerprint what is left and split it against the committed
   baseline.

A file that fails to parse yields a single REP003 finding rather than
aborting the run: the lint gate must degrade loudly, not crash.
"""

import ast
import multiprocessing
import os
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

from .baseline import Baseline, assign_fingerprints
from .config import LintConfig
from .graph import ModuleSummary, ProjectGraph, summarize_module
from .rules import all_rules
from .suppressions import build_suppression_index, parse_suppressions

#: Meta rule id for files the parser rejects.
PARSE_ERROR = "REP003"

#: Fork-inherited scan state: (engine, contexts, project, known_ids).
#: Set by the parent immediately before the worker pool is forked so
#: children see it without pickling the ASTs.
_SHARED_SCAN = None


def _scan_one(index: int):
    """Worker entry: scan the ``index``-th module of the shared state."""
    engine, contexts, project, known_ids = _SHARED_SCAN
    return engine._check_module(contexts[index], project, known_ids)


@dataclass(frozen=True)
class Finding:
    """One decorated analyzer finding."""

    rule: str
    path: str
    line: int
    column: int
    message: str
    snippet: str = ""

    def render(self) -> str:
        """``path:line:col: RULE message`` (the text reporter's line)."""
        return "%s:%d:%d: %s %s" % (self.path, self.line,
                                    self.column + 1, self.rule,
                                    self.message)


@dataclass
class ModuleContext:
    """Everything the rules can see about one module."""

    name: str
    path: str
    tree: ast.AST
    source_lines: List[str]
    is_package: bool
    summary: ModuleSummary

    _calls: Optional[List[ast.Call]] = field(default=None, repr=False)

    def calls(self) -> List[ast.Call]:
        """All Call nodes, computed once per module."""
        if self._calls is None:
            self._calls = [node for node in ast.walk(self.tree)
                           if isinstance(node, ast.Call)]
        return self._calls

    def functions(self) -> Iterator[ast.AST]:
        """Every function/method definition in the module."""
        for node in ast.walk(self.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node

    def compares_with_function(self) -> Iterator[Tuple[str, ast.Compare]]:
        """(enclosing function name, Compare node) pairs.

        The enclosing name is ``"<module>"`` at module level; rules use
        it to exempt specific functions (e.g. ``constant_time_equal``
        comparing its own accumulator).
        """
        def visit(node, scope):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef,
                                      ast.AsyncFunctionDef)):
                    yield from visit(child, child.name)
                else:
                    if isinstance(child, ast.Compare):
                        yield scope, child
                    yield from visit(child, scope)

        yield from visit(self.tree, "<module>")

    def snippet(self, line: int) -> str:
        """The source text of ``line`` (1-based), or empty."""
        if 1 <= line <= len(self.source_lines):
            return self.source_lines[line - 1]
        return ""


@dataclass
class LintResult:
    """Outcome of one analyzer run."""

    findings: List[Finding] = field(default_factory=list)     # new
    baselined: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    files_scanned: int = 0

    @property
    def clean(self) -> bool:
        """Whether the run produced no new findings."""
        return not self.findings

    @property
    def all_current(self) -> List[Finding]:
        """New plus baselined findings — what ``--update-baseline`` saves."""
        return sorted(self.findings + self.baselined,
                      key=lambda f: (f.path, f.line, f.column, f.rule))


def module_name_for(path: str) -> Tuple[str, bool]:
    """(dotted module name, is_package) for a file path.

    The name starts at the path component after the *last* ``src``
    component when present, else at the last ``repro`` component, else
    it is the bare stem — so source trees, fixture trees, and loose
    files all scope sensibly.
    """
    parts = list(os.path.splitext(os.path.abspath(path))[0].split(os.sep))
    parts = [part for part in parts if part]
    if "src" in parts:
        start = len(parts) - 1 - parts[::-1].index("src") + 1
    elif "repro" in parts:
        start = len(parts) - 1 - parts[::-1].index("repro")
    else:
        start = len(parts) - 1
    module_parts = parts[start:]
    is_package = module_parts[-1] == "__init__"
    if is_package:
        module_parts = module_parts[:-1]
    return ".".join(module_parts) or parts[-1], is_package


def collect_files(paths: Sequence[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    collected = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames
                    if d != "__pycache__" and not d.startswith("."))
                for filename in sorted(filenames):
                    if filename.endswith(".py"):
                        collected.append(os.path.join(dirpath, filename))
        elif path.endswith(".py"):
            collected.append(path)
    return collected


class LintEngine:
    """Runs the registered rules over a set of paths."""

    def __init__(self, config: Optional[LintConfig] = None,
                 rules=None) -> None:
        self.config = config if config is not None else LintConfig()
        self.rules = tuple(rules) if rules is not None else all_rules()

    # -- parsing ----------------------------------------------------------
    def _load_modules(self, files: Sequence[str]
                      ) -> Tuple[List[ModuleContext], List[Finding]]:
        contexts = []
        errors = []
        for path in files:
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    source = handle.read()
                tree = ast.parse(source, filename=path)
            except (OSError, SyntaxError, ValueError) as exc:
                line = getattr(exc, "lineno", None) or 1
                errors.append(Finding(
                    rule=PARSE_ERROR, path=path, line=line, column=0,
                    message="file does not parse: %s" % exc))
                continue
            name, is_package = module_name_for(path)
            contexts.append(ModuleContext(
                name=name, path=path, tree=tree,
                source_lines=source.splitlines(),
                is_package=is_package,
                summary=summarize_module(name, tree, is_package)))
        return contexts, errors

    # -- per-module scan --------------------------------------------------
    def _check_module(self, ctx: ModuleContext, project: ProjectGraph,
                      known_ids) -> Tuple[List[Finding], List[Finding]]:
        """(reported, suppressed) findings for one module."""
        module_findings = []
        for rule in self.rules:
            rule_config = self.config.rule(rule.id)
            if not rule_config.enabled:
                continue
            if not rule_config.applies_to(ctx.name,
                                          rule.default_scopes):
                continue
            for hit in rule.check(ctx, project):
                module_findings.append(Finding(
                    rule=rule.id, path=ctx.path, line=hit.line,
                    column=hit.column, message=hit.message,
                    snippet=ctx.snippet(hit.line)))

        raw: List[Finding] = []
        suppressed: List[Finding] = []
        index, problems = build_suppression_index(
            parse_suppressions(ctx.source_lines), known_ids)
        for finding in module_findings:
            if (finding.line, finding.rule) in index:
                suppressed.append(finding)
            else:
                raw.append(finding)
        for problem in problems:
            raw.append(Finding(
                rule=problem.rule, path=ctx.path, line=problem.line,
                column=0, message=problem.message,
                snippet=ctx.snippet(problem.line)))
        return raw, suppressed

    def _scan_modules(self, contexts: List[ModuleContext],
                      project: ProjectGraph, known_ids,
                      jobs: int) -> List[Tuple[List[Finding],
                                               List[Finding]]]:
        """Per-module scan results, in context order.

        With ``jobs > 1`` the modules are sharded across forked
        workers; each worker inherits the parsed ASTs, call graph, and
        taint fixpoint from the parent (copy-on-write), so only the
        picklable finding lists travel back. The merge preserves
        context order, which makes the output bit-identical to the
        sequential path — asserted by
        ``tests/lint/test_parallel.py``.
        """
        if jobs > 1 and len(contexts) > 1:
            try:
                mp = multiprocessing.get_context("fork")
            except ValueError:
                mp = None
            if mp is not None:
                global _SHARED_SCAN
                _SHARED_SCAN = (self, contexts, project, known_ids)
                try:
                    with mp.Pool(processes=min(jobs,
                                               len(contexts))) as pool:
                        chunk = max(1, len(contexts) // jobs)
                        return pool.map(_scan_one,
                                        range(len(contexts)),
                                        chunksize=chunk)
                finally:
                    _SHARED_SCAN = None
        return [self._check_module(ctx, project, known_ids)
                for ctx in contexts]

    # -- the run ----------------------------------------------------------
    def run(self, paths: Sequence[str],
            baseline: Optional[Baseline] = None,
            jobs: int = 1) -> LintResult:
        """Analyze ``paths`` and split findings against ``baseline``."""
        files = collect_files(paths)
        contexts, parse_errors = self._load_modules(files)

        project = ProjectGraph()
        for ctx in contexts:
            project.add(ctx.summary)
        project.finalize([(ctx.name, ctx.tree, ctx.summary)
                          for ctx in contexts])

        known_ids = {rule.id for rule in self.rules}
        result = LintResult(files_scanned=len(files))
        raw: List[Finding] = list(parse_errors)
        suppressed: List[Finding] = []

        for module_raw, module_suppressed in self._scan_modules(
                contexts, project, known_ids, jobs):
            raw.extend(module_raw)
            suppressed.extend(module_suppressed)

        raw.sort(key=lambda f: (f.path, f.line, f.column, f.rule))
        baseline = baseline if baseline is not None else Baseline()
        for finding, print_ in zip(raw, assign_fingerprints(raw)):
            if print_ in baseline:
                result.baselined.append(finding)
            else:
                result.findings.append(finding)
        result.suppressed = suppressed
        return result
