"""Per-rule configuration for the analyzer.

Every rule ships a default scope (the module-name prefixes it applies
to) and default options; a ``[tool.repro-lint]`` table in
``pyproject.toml`` can disable rules, re-scope them, or override the
baseline path::

    [tool.repro-lint]
    disable = ["REP103"]
    baseline = "lint-baseline.json"

    [tool.repro-lint.scopes]
    REP101 = ["repro.usecases", "repro.analysis", "repro.core"]

``tomllib`` is stdlib from Python 3.11; on older interpreters the
config file is simply ignored and the defaults apply (the defaults are
what CI enforces, so this degrades safely).
"""

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

try:
    import tomllib
except ImportError:  # pragma: no cover - Python < 3.11
    tomllib = None

#: Default baseline file, relative to the working directory.
DEFAULT_BASELINE = "lint-baseline.json"


@dataclass(frozen=True)
class RuleConfig:
    """Effective configuration of one rule.

    ``scopes`` is a tuple of module-name prefixes (``"repro.drm"``
    matches ``repro.drm`` and every submodule); an empty tuple means
    the rule applies everywhere.
    """

    enabled: bool = True
    scopes: Optional[Tuple[str, ...]] = None

    def applies_to(self, module_name: str,
                   default_scopes: Tuple[str, ...]) -> bool:
        """Whether a module is inside this rule's effective scope."""
        scopes = self.scopes if self.scopes is not None else default_scopes
        if not scopes:
            return True
        parts = module_name.split(".")
        for scope in scopes:
            prefix = scope.split(".")
            if parts[:len(prefix)] == prefix:
                return True
        return False


@dataclass
class LintConfig:
    """Analyzer-wide configuration: rule toggles, scopes, baseline path."""

    rules: Dict[str, RuleConfig] = field(default_factory=dict)
    baseline_path: str = DEFAULT_BASELINE

    def rule(self, rule_id: str) -> RuleConfig:
        """The configuration for ``rule_id`` (defaults if unconfigured)."""
        return self.rules.get(rule_id, RuleConfig())

    @classmethod
    def from_mapping(cls, table: Mapping) -> "LintConfig":
        """Build a config from a ``[tool.repro-lint]`` mapping."""
        rules: Dict[str, RuleConfig] = {}
        for rule_id in table.get("disable", ()):
            rules[str(rule_id)] = RuleConfig(enabled=False)
        for rule_id, scopes in table.get("scopes", {}).items():
            base = rules.get(str(rule_id), RuleConfig())
            rules[str(rule_id)] = RuleConfig(
                enabled=base.enabled,
                scopes=tuple(str(s) for s in scopes))
        return cls(rules=rules,
                   baseline_path=str(table.get("baseline",
                                               DEFAULT_BASELINE)))

    @classmethod
    def from_pyproject(cls, path: str) -> "LintConfig":
        """Load config from ``pyproject.toml``; defaults when absent."""
        if tomllib is None:
            return cls()
        try:
            with open(path, "rb") as handle:
                document = tomllib.load(handle)
        except (OSError, ValueError):
            return cls()
        table = document.get("tool", {}).get("repro-lint", {})
        if not isinstance(table, dict):
            return cls()
        return cls.from_mapping(table)
