"""Committed baseline of grandfathered findings.

A baseline lets the analyzer gate *new* findings in CI while historical
ones are burned down incrementally. Entries match by **fingerprint** —
a hash of (rule, path, normalized source line, occurrence index) — so
they survive unrelated edits that shift line numbers, but expire the
moment the offending line itself changes.

The file is JSON, sorted, and committed; regenerate with
``python -m repro lint --update-baseline``.
"""

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Set, Tuple

#: Schema version of the baseline file.
BASELINE_VERSION = 1


def fingerprint(rule: str, path: str, snippet: str, occurrence: int) -> str:
    """Stable identity of one finding, independent of line numbers."""
    payload = "%s|%s|%s|%d" % (rule, path.replace("\\", "/"),
                               snippet.strip(), occurrence)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def assign_fingerprints(findings) -> List[str]:
    """Fingerprints for a finding list, disambiguating duplicates.

    Two findings of the same rule on identical source lines in one file
    get occurrence indexes 0, 1, ... in line order, keeping the
    fingerprints distinct and stable.
    """
    seen: Dict[Tuple[str, str, str], int] = {}
    prints = []
    for finding in findings:
        key = (finding.rule, finding.path, finding.snippet.strip())
        occurrence = seen.get(key, 0)
        seen[key] = occurrence + 1
        prints.append(fingerprint(finding.rule, finding.path,
                                  finding.snippet, occurrence))
    return prints


@dataclass
class Baseline:
    """The set of grandfathered finding fingerprints."""

    fingerprints: Set[str] = field(default_factory=set)

    def __contains__(self, print_: str) -> bool:
        return print_ in self.fingerprints

    @classmethod
    def load(cls, path: str) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        try:
            with open(path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except FileNotFoundError:
            return cls()
        if document.get("version") != BASELINE_VERSION:
            raise ValueError("unsupported baseline version %r"
                             % document.get("version"))
        return cls(fingerprints={entry["fingerprint"]
                                 for entry in document.get("findings", [])})

    @staticmethod
    def save(path: str, findings: Iterable) -> None:
        """Write ``findings`` as the new baseline (sorted, stable)."""
        findings = list(findings)
        entries = [
            {"fingerprint": print_, "rule": finding.rule,
             "path": finding.path.replace("\\", "/"),
             "message": finding.message}
            for finding, print_ in zip(findings,
                                       assign_fingerprints(findings))
        ]
        entries.sort(key=lambda e: (e["path"], e["rule"], e["fingerprint"]))
        document = {"version": BASELINE_VERSION, "findings": entries}
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
