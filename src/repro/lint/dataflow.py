"""Forward taint engine with per-function summaries.

PR 3's REP301 was a *syntactic* heuristic: a secret-named variable
interpolated on the same line it is visible. It cannot see the secret
that travels — ``kcek`` passed to a formatting helper whose result
lands in a tracer span two calls later looks like three innocent
lines. This module tracks the flow itself:

* **Sources** seed taint: secret-*named* variables and attributes
  (``kdev``, ``kmac``, ``krek``, ``kcek``, ``kek``, ``cek``, ``rek``,
  key/secret/private/nonce/token/password segments), and calls that
  mint key material (``random_bytes``, ``new_nonce``, ``os.urandom``,
  DRBG ``generate``/``random_*`` methods).
* **Propagation** follows assignments (including tuple unpacking and
  augmented assigns), subscripts/slices, string building (``%``,
  ``+``, ``.format``, ``str``/``repr``/``.hex()``), collection
  literals, conditional expressions — and *calls*, through each
  callee's summary (``params_to_return``, ``returns_secret``).
* **Sanitizers** stop it: size/type metadata (``len``, ``type``,
  ``id``, ``bool``, ``int``), boolean verdicts (``hmac_verify``,
  ``constant_time_equal``, ``pss_verify``), and stable-digest
  redactors (``fingerprint``/``redact``/``digest`` names) whose whole
  point is to be safe to publish.
* **Sinks** report: exception-constructor arguments, f-string
  interpolation, log calls, tracer ``span``/``event`` attributes and
  ``span.set`` values, metrics label/value arguments, and
  ``json.dumps`` serialization.

Every function gets a **summary** — which parameters reach its return
value, whether it returns fresh secret material, and which parameters
reach a sink (with the qualname path down to the sink). Summaries are
computed to a fixpoint over the :mod:`repro.lint.callgraph` worklist
(monotone: facts are only ever added, so convergence and determinism
are structural, held under Hypothesis by
``tests/lint/test_callgraph.py``). A finding is reported either where
a secret hits a sink directly, or at the call frontier where a secret
argument enters a parameter that some transitive callee sinks — with
the full path as evidence.
"""

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from .callgraph import CallGraph, FunctionNode
from .graph import ModuleSummary

#: Identifier segments that mark a value as key material.  ``nonce`` is
#: included deliberately: ROAP nonces are DRBG output and an audit
#: channel for it (the paper's replay defenses assume they are
#: unpredictable).
SECRET_SEGMENTS = re.compile(
    r"(?:^|_)(?:key|keys|kek|cek|rek|kdev|kmac|krek|kcek|secret|"
    r"secrets|password|passwd|token|nonce|private)(?:_|$)")

#: Identifiers that match the segment regex but are not secret values.
SECRET_EXCEPTIONS = re.compile(
    r"public|_id$|_ids$|_name$|_label$|_kind$|keyword|_size$|_len$|"
    r"_length$|_octets$")

#: Call names that mint fresh secret material.
_SOURCE_CALLS = frozenset({"random_bytes", "new_nonce", "urandom",
                           "token_bytes", "random_odd_int"})

#: Metadata calls: the result reveals nothing about the argument bytes.
_METADATA_CALLS = frozenset({"len", "type", "id", "bool", "int",
                             "float", "ord", "isinstance", "hasattr",
                             "min", "max", "sum", "range",
                             "enumerate"})

#: Verdict calls: constant-size boolean outcomes of a comparison.
_VERDICT_CALLS = frozenset({"hmac_verify", "constant_time_equal",
                            "pss_verify", "verify"})

#: Redactor names: produce stable, publishable identifiers of secrets.
_REDACTOR_RE = re.compile(r"fingerprint|redact|digest")

#: Logger-ish receivers and their emitting methods.
_LOGGER_NAMES = frozenset({"log", "logger", "logging"})
_LOG_METHODS = frozenset({"debug", "info", "warning", "warn", "error",
                          "exception", "critical", "log"})

#: Tracer emitting methods (keyword attributes land in exports).
_TRACER_METHODS = frozenset({"event", "span"})

#: Metrics emitting methods (label and value arguments are exported).
_METRICS_METHODS = frozenset({"counter", "gauge", "histogram"})

#: Upper bound on recorded sink paths; monotone summaries make this a
#: belt-and-braces guard, not a correctness requirement.
_MAX_PATH = 12

#: Taint origins: ("secret", label) or ("param", index).
Origin = Tuple[str, object]
Taint = FrozenSet[Origin]

_EMPTY: Taint = frozenset()


def is_secret_name(identifier: str) -> bool:
    """Whether an identifier names key material by convention."""
    lowered = identifier.strip("_").lower()
    return bool(SECRET_SEGMENTS.search(lowered)) \
        and not SECRET_EXCEPTIONS.search(lowered)


@dataclass(frozen=True)
class SinkFlow:
    """How one function parameter reaches a sink."""

    kind: str                  # e.g. "exception message"
    line: int                  # sink line (or call line when remote)
    path: Tuple[str, ...]      # qualnames from this function to sink


@dataclass
class FunctionSummary:
    """Dataflow facts about one function, for its callers."""

    qualname: str
    params: Tuple[str, ...]
    returns_secret: bool = False
    secret_label: str = ""
    params_to_return: FrozenSet[int] = frozenset()
    param_sinks: Dict[int, SinkFlow] = field(default_factory=dict)

    def merge(self, other: "FunctionSummary") -> bool:
        """Fold ``other``'s facts in monotonically; True if changed."""
        changed = False
        if other.returns_secret and not self.returns_secret:
            self.returns_secret = True
            self.secret_label = other.secret_label
            changed = True
        merged = self.params_to_return | other.params_to_return
        if merged != self.params_to_return:
            self.params_to_return = merged
            changed = True
        for index, flow in sorted(other.param_sinks.items()):
            if index not in self.param_sinks:
                self.param_sinks[index] = flow
                changed = True
        return changed


@dataclass(frozen=True)
class TaintFinding:
    """One secret-to-sink flow, located in its module."""

    module: str
    line: int
    column: int
    message: str


class _FunctionAnalyzer:
    """Analyze one function body against current summaries."""

    def __init__(self, analysis: "DataflowAnalysis",
                 fn: FunctionNode, node: ast.AST,
                 summary: ModuleSummary, collect: bool) -> None:
        self.analysis = analysis
        self.fn = fn
        self.node = node
        self.module_summary = summary
        self.collect = collect
        self.env: Dict[str, Taint] = {}
        self.span_vars: Set[str] = {"span"}
        self.result = FunctionSummary(qualname=fn.qualname,
                                      params=fn.params)
        self.findings: List[TaintFinding] = []
        for index, param in enumerate(fn.params):
            origins: Set[Origin] = {("param", index)}
            if is_secret_name(param):
                origins.add(("secret", param))
            self.env[param] = frozenset(origins)

    # -- expression taint --------------------------------------------------
    def taint_of(self, node: ast.AST) -> Taint:
        if isinstance(node, ast.Name):
            found = self.env.get(node.id, _EMPTY)
            if is_secret_name(node.id):
                found = found | {("secret", node.id)}
            return found
        if isinstance(node, ast.Attribute):
            # Attribute reads do not inherit the receiver's taint
            # (``key.bit_length`` is metadata) but secret-named
            # attributes seed it (``context.kcek``).
            if is_secret_name(node.attr):
                return frozenset({("secret", node.attr)})
            if node.attr == "hex" or node.attr == "decode":
                # bound-method reference; handled at the Call.
                return self.taint_of(node.value)
            return _EMPTY
        if isinstance(node, ast.Subscript):
            return self.taint_of(node.value)
        if isinstance(node, ast.BinOp):
            return self.taint_of(node.left) | self.taint_of(node.right)
        if isinstance(node, ast.UnaryOp):
            return self.taint_of(node.operand)
        if isinstance(node, ast.BoolOp):
            merged: Taint = _EMPTY
            for value in node.values:
                merged |= self.taint_of(value)
            return merged
        if isinstance(node, ast.IfExp):
            return self.taint_of(node.body) | self.taint_of(node.orelse)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            merged = _EMPTY
            for element in node.elts:
                merged |= self.taint_of(element)
            return merged
        if isinstance(node, ast.Dict):
            merged = _EMPTY
            for value in node.values:
                if value is not None:
                    merged |= self.taint_of(value)
            return merged
        if isinstance(node, ast.Starred):
            return self.taint_of(node.value)
        if isinstance(node, ast.JoinedStr):
            merged = _EMPTY
            for value in node.values:
                if isinstance(value, ast.FormattedValue):
                    merged |= self.taint_of(value.value)
            return merged
        if isinstance(node, ast.Compare):
            return _EMPTY
        if isinstance(node, ast.Await):
            return self.taint_of(node.value)
        if isinstance(node, ast.NamedExpr):
            return self.taint_of(node.value)
        if isinstance(node, ast.Call):
            return self._taint_of_call(node)
        return _EMPTY

    def _call_name(self, node: ast.Call) -> str:
        func = node.func
        if isinstance(func, ast.Name):
            return func.id
        if isinstance(func, ast.Attribute):
            return func.attr
        return ""

    def _taint_of_call(self, node: ast.Call) -> Taint:
        name = self._call_name(node)
        if name in _METADATA_CALLS or name in _VERDICT_CALLS:
            return _EMPTY
        if _REDACTOR_RE.search(name.lower()):
            return _EMPTY
        if name in _SOURCE_CALLS:
            return frozenset({("secret", "%s() output" % name)})
        if name in {"str", "repr", "format", "bytes", "bytearray",
                    "hex", "join"}:
            merged: Taint = _EMPTY
            for arg in node.args:
                merged |= self.taint_of(arg)
            if isinstance(node.func, ast.Attribute):
                merged |= self.taint_of(node.func.value)
            return merged
        resolved = self.analysis.resolve_call(
            self.fn, self.module_summary, node)
        if resolved is not None:
            callee = self.analysis.summaries.get(resolved)
            if callee is not None:
                merged = _EMPTY
                if callee.returns_secret:
                    merged |= {("secret", callee.secret_label
                                or callee.qualname)}
                for index, argument in self._arguments(callee, node):
                    if index in callee.params_to_return:
                        merged |= self.taint_of(argument)
                return merged
        # Unresolved call: conservatively forward argument taint —
        # provider methods like aes_unwrap(kdev, ...) *return* key
        # material derived from their arguments.
        merged = _EMPTY
        for arg in node.args:
            merged |= self.taint_of(arg)
        for keyword in node.keywords:
            merged |= self.taint_of(keyword.value)
        return merged

    def _arguments(self, callee: FunctionSummary, node: ast.Call
                   ) -> List[Tuple[int, ast.AST]]:
        """(parameter index, argument expression) pairs for a call."""
        pairs = []
        for position, arg in enumerate(node.args):
            if isinstance(arg, ast.Starred):
                continue
            if position < len(callee.params):
                pairs.append((position, arg))
        for keyword in node.keywords:
            if keyword.arg is None:
                continue
            if keyword.arg in callee.params:
                pairs.append((callee.params.index(keyword.arg),
                              keyword.value))
        return pairs

    # -- sinks -------------------------------------------------------------
    def _sink(self, kind: str, node: ast.AST, taint: Taint,
              via: Optional[SinkFlow] = None) -> None:
        """Record a tainted value reaching a sink of ``kind``."""
        secrets = sorted(str(label) for tag, label in taint
                         if tag == "secret")
        params = sorted(index for tag, index in taint
                        if tag == "param")
        line = getattr(node, "lineno", self.fn.line)
        column = getattr(node, "col_offset", 0)
        if secrets and self.collect:
            if via is not None:
                trail = " -> ".join(via.path[:_MAX_PATH])
                message = ("secret %r flows into a %s "
                           "(interprocedural; path: %s -> %s)"
                           % (secrets[0], via.kind,
                              self.fn.qualname, trail))
            else:
                message = "secret %r reaches a %s" % (secrets[0], kind)
            self.findings.append(TaintFinding(
                module=self.fn.module, line=line, column=column,
                message=message))
        for index in params:
            if index in self.result.param_sinks:
                continue
            if via is not None:
                path = ((self.fn.qualname,) + via.path)[:_MAX_PATH]
                flow = SinkFlow(kind=via.kind, line=line, path=path)
            else:
                flow = SinkFlow(kind=kind, line=line,
                                path=(self.fn.qualname,))
            self.result.param_sinks[index] = flow

    def _receiver_chain(self, func: ast.Attribute) -> str:
        parts = []
        cursor = func.value
        while isinstance(cursor, ast.Attribute):
            parts.append(cursor.attr)
            cursor = cursor.value
        if isinstance(cursor, ast.Name):
            parts.append(cursor.id)
        return ".".join(reversed(parts)).lower()

    def _scan_call_sinks(self, node: ast.Call) -> None:
        func = node.func
        if not isinstance(func, ast.Attribute):
            # json.dumps via ``from json import dumps``.
            if isinstance(func, ast.Name) and func.id in {"dumps",
                                                          "dump"}:
                for arg in node.args:
                    self._sink("JSON serialization", node,
                               self.taint_of(arg))
            return
        receiver = self._receiver_chain(func)
        method = func.attr
        if method in _LOG_METHODS \
                and receiver.split(".")[-1] in _LOGGER_NAMES:
            for arg in node.args:
                self._sink("log call", node, self.taint_of(arg))
        elif method in _TRACER_METHODS and "tracer" in receiver:
            for arg in list(node.args) \
                    + [kw.value for kw in node.keywords]:
                self._sink("trace attribute", node, self.taint_of(arg))
        elif method == "set" \
                and receiver.split(".")[-1] in self.span_vars:
            for arg in node.args:
                self._sink("trace attribute", node, self.taint_of(arg))
        elif method in _METRICS_METHODS and "metrics" in receiver:
            for arg in list(node.args) \
                    + [kw.value for kw in node.keywords]:
                self._sink("metrics label", node, self.taint_of(arg))
        elif method in {"dumps", "dump"} \
                and receiver.split(".")[-1] == "json":
            for arg in node.args:
                self._sink("JSON serialization", node,
                           self.taint_of(arg))

    def _scan_interprocedural(self, node: ast.Call) -> None:
        resolved = self.analysis.resolve_call(
            self.fn, self.module_summary, node)
        if resolved is None:
            return
        callee = self.analysis.summaries.get(resolved)
        if callee is None or not callee.param_sinks:
            return
        for index, argument in self._arguments(callee, node):
            flow = callee.param_sinks.get(index)
            if flow is None:
                continue
            taint = self.taint_of(argument)
            if not taint:
                continue
            # A secret-named callee parameter already produces the
            # intraprocedural finding inside the callee; reporting the
            # call site too would double-count one flow.
            param_name = callee.params[index] \
                if index < len(callee.params) else ""
            remote = frozenset(
                origin for origin in taint
                if origin[0] == "secret"
                and not is_secret_name(param_name))
            params_only = frozenset(origin for origin in taint
                                    if origin[0] == "param")
            self._sink(flow.kind, node, remote | params_only, via=flow)

    # -- statements --------------------------------------------------------
    def _assign_target(self, target: ast.AST, taint: Taint,
                       value: Optional[ast.AST]) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = taint
        elif isinstance(target, (ast.Tuple, ast.List)):
            if isinstance(value, (ast.Tuple, ast.List)) \
                    and len(value.elts) == len(target.elts):
                for element, sub in zip(target.elts, value.elts):
                    self._assign_target(element, self.taint_of(sub),
                                        sub)
            else:
                for element in target.elts:
                    self._assign_target(element, taint, None)
        elif isinstance(target, ast.Starred):
            self._assign_target(target.value, taint, None)

    def _scan_expression_tree(self, node: ast.AST) -> None:
        """Visit every call in an expression for sinks and summaries."""
        for child in ast.walk(node):
            if isinstance(child, ast.Call):
                self._scan_call_sinks(child)
                self._scan_interprocedural(child)
            elif isinstance(child, ast.JoinedStr):
                for value in child.values:
                    if isinstance(value, ast.FormattedValue):
                        self._sink("formatted string "
                                   "(f-string interpolation)",
                                   value.value,
                                   self.taint_of(value.value))

    def _scan_statements(self, body: Sequence[ast.stmt]) -> None:
        for statement in body:
            self._scan_statement(statement)

    def _scan_statement(self, statement: ast.stmt) -> None:
        if isinstance(statement, (ast.FunctionDef,
                                  ast.AsyncFunctionDef,
                                  ast.ClassDef)):
            return
        if isinstance(statement, ast.Assign):
            self._scan_expression_tree(statement.value)
            taint = self.taint_of(statement.value)
            for target in statement.targets:
                self._assign_target(target, taint, statement.value)
            return
        if isinstance(statement, ast.AnnAssign):
            if statement.value is not None:
                self._scan_expression_tree(statement.value)
                self._assign_target(statement.target,
                                    self.taint_of(statement.value),
                                    statement.value)
            return
        if isinstance(statement, ast.AugAssign):
            self._scan_expression_tree(statement.value)
            if isinstance(statement.target, ast.Name):
                merged = self.env.get(statement.target.id, _EMPTY) \
                    | self.taint_of(statement.value)
                self.env[statement.target.id] = merged
            return
        if isinstance(statement, ast.Return):
            if statement.value is not None:
                self._scan_expression_tree(statement.value)
                taint = self.taint_of(statement.value)
                secrets = [label for tag, label in taint
                           if tag == "secret"]
                if secrets and not self.result.returns_secret:
                    self.result.returns_secret = True
                    self.result.secret_label = str(sorted(
                        str(label) for label in secrets)[0])
                params = frozenset(index for tag, index in taint
                                   if tag == "param")
                self.result.params_to_return |= params
            return
        if isinstance(statement, ast.Raise):
            if statement.exc is not None:
                self._scan_expression_tree(statement.exc)
                if isinstance(statement.exc, ast.Call):
                    values = list(statement.exc.args) \
                        + [kw.value for kw in statement.exc.keywords]
                else:
                    values = [statement.exc]
                for value in values:
                    self._sink("exception message", statement,
                               self.taint_of(value))
            return
        if isinstance(statement, ast.Expr):
            self._scan_expression_tree(statement.value)
            return
        if isinstance(statement, (ast.With, ast.AsyncWith)):
            for item in statement.items:
                self._scan_expression_tree(item.context_expr)
                if isinstance(item.optional_vars, ast.Name) \
                        and isinstance(item.context_expr, ast.Call) \
                        and isinstance(item.context_expr.func,
                                       ast.Attribute) \
                        and item.context_expr.func.attr == "span":
                    self.span_vars.add(item.optional_vars.id)
            self._scan_statements(statement.body)
            return
        if isinstance(statement, (ast.If, ast.While)):
            self._scan_expression_tree(statement.test)
            self._scan_statements(statement.body)
            self._scan_statements(statement.orelse)
            return
        if isinstance(statement, (ast.For, ast.AsyncFor)):
            self._scan_expression_tree(statement.iter)
            self._assign_target(statement.target,
                                self.taint_of(statement.iter), None)
            self._scan_statements(statement.body)
            self._scan_statements(statement.orelse)
            return
        if isinstance(statement, ast.Try):
            self._scan_statements(statement.body)
            for handler in statement.handlers:
                self._scan_statements(handler.body)
            self._scan_statements(statement.orelse)
            self._scan_statements(statement.finalbody)
            return
        # Everything else (pass, global, import, assert, delete, ...):
        # scan embedded expressions for sinks.
        for child in ast.iter_child_nodes(statement):
            if isinstance(child, ast.expr):
                self._scan_expression_tree(child)

    def run(self) -> Tuple[FunctionSummary, List[TaintFinding]]:
        body = getattr(self.node, "body", [])
        # Pass 1 warms the environment so loops and forward references
        # settle; only pass 2 records sinks and findings.
        saved_collect = self.collect
        self.collect = False
        findings_off = self.findings
        self._scan_statements(body)
        self.collect = saved_collect
        self.findings = [] if saved_collect else findings_off
        self.result = FunctionSummary(qualname=self.fn.qualname,
                                      params=self.fn.params)
        self._scan_statements(body)
        return self.result, self.findings


class DataflowAnalysis:
    """Project-wide fixpoint over per-function taint summaries."""

    def __init__(self, graph: CallGraph,
                 modules: Dict[str, Tuple[ast.AST, ModuleSummary]]
                 ) -> None:
        self.graph = graph
        self.modules = modules
        self.summaries: Dict[str, FunctionSummary] = {}
        self.findings_by_module: Dict[str, List[TaintFinding]] = {}
        self._bodies: Dict[str, ast.AST] = {}
        self._index_bodies()
        self._fixpoint()
        self._collect_findings()

    # -- body lookup -------------------------------------------------------
    def _index_bodies(self) -> None:
        for module in sorted(self.modules):
            tree, _summary = self.modules[module]
            self._walk_defs(module, tree, [])

    def _walk_defs(self, module: str, node: ast.AST,
                   path: List[str]) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef,
                                  ast.AsyncFunctionDef,
                                  ast.ClassDef)):
                qualname = ".".join([module] + path + [child.name])
                if not isinstance(child, ast.ClassDef):
                    self._bodies[qualname] = child
                self._walk_defs(module, child, path + [child.name])
            else:
                self._walk_defs(module, child, path)

    # -- call resolution (shared with the analyzer) ------------------------
    def resolve_call(self, fn: FunctionNode, summary: ModuleSummary,
                     node: ast.Call) -> Optional[str]:
        func = node.func
        if isinstance(func, ast.Name):
            module_level = "%s.%s" % (fn.module, func.id)
            if module_level in self.graph.functions:
                return module_level
            if module_level in self.graph.classes:
                return self.graph.method_on(module_level, "__init__")
            imported = summary.imports.get(func.id)
            if imported is not None and imported.symbol is not None:
                dotted = "%s.%s" % (imported.module, imported.symbol)
                if dotted in self.graph.functions:
                    return dotted
                if dotted in self.graph.classes:
                    return self.graph.method_on(dotted, "__init__")
            return None
        if isinstance(func, ast.Attribute):
            if isinstance(func.value, ast.Name) \
                    and func.value.id in {"self", "cls"} \
                    and fn.owner_class is not None:
                return self.graph.method_on(fn.owner_class, func.attr)
            if isinstance(func.value, ast.Name):
                imported = summary.imports.get(func.value.id)
                if imported is not None and imported.symbol is None:
                    dotted = "%s.%s" % (imported.module, func.attr)
                    if dotted in self.graph.functions:
                        return dotted
        return None

    # -- the fixpoint ------------------------------------------------------
    def _analyze(self, qualname: str,
                 collect: bool) -> Tuple[FunctionSummary,
                                         List[TaintFinding]]:
        fn = self.graph.functions[qualname]
        node = self._bodies.get(qualname)
        if node is None:
            return FunctionSummary(qualname=qualname,
                                   params=fn.params), []
        _tree, module_summary = self.modules[fn.module]
        analyzer = _FunctionAnalyzer(self, fn, node, module_summary,
                                     collect)
        return analyzer.run()

    def _fixpoint(self) -> None:
        order = [fn.qualname for fn in self.graph.sorted_functions()
                 if fn.module in self.modules]
        reverse: Dict[str, Set[str]] = {}
        for qualname in order:
            for site in self.graph.edges_from(qualname):
                reverse.setdefault(site.callee, set()).add(qualname)
        for qualname in order:
            fn = self.graph.functions[qualname]
            self.summaries[qualname] = FunctionSummary(
                qualname=qualname, params=fn.params)
        pending = list(order)
        queued = set(pending)
        rounds = 0
        budget = max(64, 16 * len(order))
        while pending and rounds < budget:
            rounds += 1
            qualname = pending.pop(0)
            queued.discard(qualname)
            fresh, _findings = self._analyze(qualname, collect=False)
            if self.summaries[qualname].merge(fresh):
                for caller in sorted(reverse.get(qualname, ())):
                    if caller not in queued:
                        pending.append(caller)
                        queued.add(caller)

    def _collect_findings(self) -> None:
        for qualname in [fn.qualname
                         for fn in self.graph.sorted_functions()
                         if fn.module in self.modules]:
            _summary, findings = self._analyze(qualname, collect=True)
            for finding in findings:
                self.findings_by_module.setdefault(
                    finding.module, []).append(finding)
        for module in self.findings_by_module:
            self.findings_by_module[module].sort(
                key=lambda f: (f.line, f.column, f.message))

    def findings_for(self, module: str) -> List[TaintFinding]:
        return list(self.findings_by_module.get(module, ()))
