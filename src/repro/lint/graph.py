"""Lightweight import graph and per-function call summaries.

The metering rules (REP2xx) need more than "does this module import
``repro.crypto``": a ``repro.drm`` module can escape the metered
provider *transitively* by calling a helper in a third module that
itself invokes a primitive. This module builds just enough structure to
catch that one level of indirection:

* a per-module **import table** mapping local aliases to the
  (module, symbol) they resolve to, with relative imports resolved
  against the module's dotted name, and
* a per-module **call summary**: the set of function names whose bodies
  invoke a crypto primitive directly.

It is deliberately not a full call-graph — no attribute dataflow, no
class hierarchy — because the invariant it protects is architectural
(who may *import* whom) and one level of summaries already makes the
bypass a deliberate act rather than an accident.
"""

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Set, Tuple

#: The package whose primitives must stay behind the provider.
CRYPTO_PACKAGE = "repro.crypto"

#: Crypto modules any layer may import freely (exception types only).
ALLOWED_CRYPTO_MODULES = frozenset({"repro.crypto.errors"})

#: Data types and size constants that carry no computation: importing
#: them cannot bypass metering.
ALLOWED_CRYPTO_NAMES = frozenset({
    "KemCiphertext", "RSAPrivateKey", "RSAPublicKey", "RSAKeyPair",
    "DIGEST_SIZE", "BLOCK_SIZE", "KEK_LENGTH", "SEMIBLOCK",
})


@dataclass(frozen=True)
class ImportedName:
    """One local alias introduced by an import statement."""

    alias: str                 # the name as visible in the module
    module: str                # resolved dotted module
    symbol: Optional[str]      # None for plain module imports
    line: int

    @property
    def dotted(self) -> str:
        """Fully dotted path this alias stands for."""
        return self.module + "." + self.symbol if self.symbol \
            else self.module

    @property
    def is_crypto_primitive(self) -> bool:
        """Whether using this name executes unmetered crypto."""
        if not (self.module == CRYPTO_PACKAGE
                or self.module.startswith(CRYPTO_PACKAGE + ".")):
            return False
        if self.module in ALLOWED_CRYPTO_MODULES:
            return False
        if self.symbol is not None and self.symbol in ALLOWED_CRYPTO_NAMES:
            return False
        return True


def resolve_relative(module_name: str, is_package: bool, level: int,
                     target: Optional[str]) -> str:
    """Resolve a ``from ..x import y`` module spec to a dotted name."""
    if level == 0:
        return target or ""
    parts = module_name.split(".")
    if not is_package:
        parts = parts[:-1]
    if level > 1:
        parts = parts[:len(parts) - (level - 1)]
    if target:
        parts = parts + target.split(".")
    return ".".join(parts)


def iter_imports(tree: ast.AST, module_name: str,
                 is_package: bool) -> Iterator[ImportedName]:
    """All aliases any import statement in ``tree`` introduces."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                # ``import a.b`` binds ``a``; ``import a.b as c`` binds
                # the full module to ``c``.
                module = alias.name if alias.asname else \
                    alias.name.split(".")[0]
                yield ImportedName(alias=local, module=module,
                                   symbol=None, line=node.lineno)
        elif isinstance(node, ast.ImportFrom):
            base = resolve_relative(module_name, is_package,
                                    node.level, node.module)
            for alias in node.names:
                if alias.name == "*":
                    continue
                yield ImportedName(alias=alias.asname or alias.name,
                                   module=base, symbol=alias.name,
                                   line=node.lineno)


@dataclass
class ModuleSummary:
    """Imports plus the names of functions that touch crypto directly."""

    name: str
    imports: Dict[str, ImportedName] = field(default_factory=dict)
    crypto_imports: Tuple[ImportedName, ...] = ()
    crypto_using_functions: Set[str] = field(default_factory=set)

    def resolve_call(self, node: ast.Call
                     ) -> Optional[Tuple[str, str]]:
        """(module, function) a call resolves to via imports, if any."""
        func = node.func
        if isinstance(func, ast.Name):
            imported = self.imports.get(func.id)
            if imported is not None and imported.symbol is not None:
                return imported.module, imported.symbol
        elif isinstance(func, ast.Attribute) \
                and isinstance(func.value, ast.Name):
            imported = self.imports.get(func.value.id)
            if imported is not None and imported.symbol is None:
                return imported.module, func.attr
        return None

    def dotted_call_path(self, node: ast.Call) -> Optional[str]:
        """Fully dotted path of a call target (``datetime.datetime.now``).

        Unrolls the attribute chain and substitutes the root name
        through the import table, so aliases (``import datetime as dt``)
        resolve to canonical paths. Returns ``None`` for dynamic
        targets (calls on call results, subscripts, ...).
        """
        parts = []
        cursor = node.func
        while isinstance(cursor, ast.Attribute):
            parts.append(cursor.attr)
            cursor = cursor.value
        if not isinstance(cursor, ast.Name):
            return None
        imported = self.imports.get(cursor.id)
        root = imported.dotted if imported is not None else cursor.id
        return ".".join([root] + list(reversed(parts)))


def _call_uses_crypto(node: ast.Call, summary: ModuleSummary) -> bool:
    func = node.func
    if isinstance(func, ast.Name):
        imported = summary.imports.get(func.id)
        return (imported is not None and imported.symbol is not None
                and imported.is_crypto_primitive)
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        imported = summary.imports.get(func.value.id)
        return (imported is not None and imported.symbol is None
                and imported.is_crypto_primitive)
    return False


def summarize_module(name: str, tree: ast.AST,
                     is_package: bool) -> ModuleSummary:
    """Build the import table and crypto call summary of one module."""
    summary = ModuleSummary(name=name)
    crypto = []
    for imported in iter_imports(tree, name, is_package):
        summary.imports[imported.alias] = imported
        if imported.is_crypto_primitive:
            crypto.append(imported)
    summary.crypto_imports = tuple(crypto)

    class _FunctionVisitor(ast.NodeVisitor):
        def __init__(self):
            self.stack = ["<module>"]

        def _visit_function(self, node):
            self.stack.append(node.name)
            self.generic_visit(node)
            self.stack.pop()

        visit_FunctionDef = _visit_function
        visit_AsyncFunctionDef = _visit_function

        def visit_Call(self, node):
            if _call_uses_crypto(node, summary):
                summary.crypto_using_functions.add(self.stack[-1])
            self.generic_visit(node)

    _FunctionVisitor().visit(tree)
    return summary


class ProjectGraph:
    """Summaries for every scanned module, queried by dotted name.

    After :meth:`finalize` the graph also carries the whole-program
    :class:`~repro.lint.callgraph.CallGraph` and the
    :class:`~repro.lint.dataflow.DataflowAnalysis` fixpoint, which the
    interprocedural rule families (REP2xx reachability, REP8xx taint)
    query instead of the one-level import summaries.
    """

    def __init__(self) -> None:
        self._summaries: Dict[str, ModuleSummary] = {}
        self.callgraph = None
        self.dataflow = None

    def add(self, summary: ModuleSummary) -> None:
        self._summaries[summary.name] = summary

    def summary(self, name: str) -> Optional[ModuleSummary]:
        return self._summaries.get(name)

    def finalize(self, modules) -> None:
        """Build the call graph and run the taint fixpoint.

        ``modules`` is a sequence of ``(name, tree, summary)`` triples
        for every parsed module. Imported lazily so the light
        import-table path stays dependency-free.
        """
        from .callgraph import build_call_graph
        from .dataflow import DataflowAnalysis
        self.callgraph = build_call_graph(modules)
        self.dataflow = DataflowAnalysis(
            self.callgraph,
            {name: (tree, summary) for name, tree, summary in modules})

    def __len__(self) -> int:
        return len(self._summaries)
