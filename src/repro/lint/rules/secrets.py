"""REP3xx — secret hygiene (timing discipline).

Inside :mod:`repro.crypto`, tag/digest/padding bytes must be compared
through :func:`~repro.crypto.encoding.constant_time_equal`; a raw
``==`` is an early-exit timing oracle (the discipline
``docs/static-analysis.md`` cross-references from the paper's
embedded-implementation setting).

REP301 — the syntactic "secret-named variable interpolated here"
heuristic — used to live in this family; it is superseded by REP801
(:mod:`repro.lint.rules.taint`), which tracks the *flow* of key
material through assignments and calls into sinks instead of matching
names at the interpolation site.
"""

import ast
import re
from typing import Iterator

from .base import RawFinding, Rule

#: Calls that evidently return bytes (digest/MAC/codec outputs).
_BYTES_RETURNING = frozenset({
    "sha1", "hmac_sha1", "mgf1", "kdf2", "wrap", "unwrap", "bytes",
    "bytearray", "encrypt_block", "decrypt_block", "i2osp",
})

#: Names that conventionally hold digest/tag/IV byte strings.
_BYTES_NAMES = re.compile(
    r"(?:^|_)(?:iv|icv|tag|mac|digest|hash|salt|pad|padding|mask|"
    r"signature|sig|key|kek)(?:_|$)")


class ConstantTimeCompareRule(Rule):
    """REP302: no ``==``/``!=`` on byte strings inside repro.crypto."""

    id = "REP302"
    title = ("variable-time ==/!= on digest/tag/padding bytes in "
             "repro.crypto; use constant_time_equal")
    default_scopes = ("repro.crypto",)

    @staticmethod
    def _excluded(node) -> bool:
        """Operand shapes that are evidently not byte-string values."""
        if isinstance(node, ast.Constant) \
                and not isinstance(node.value, bytes):
            return True
        if isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Name) \
                and node.func.id == "len":
            return True
        if isinstance(node, ast.BinOp):
            return True
        if isinstance(node, ast.Attribute):
            return True
        return False

    @staticmethod
    def _bytes_evidence(node) -> bool:
        """Operand shapes that evidently produce byte strings."""
        if isinstance(node, ast.Constant) \
                and isinstance(node.value, bytes):
            return True
        if isinstance(node, ast.Subscript) \
                and isinstance(node.slice, ast.Slice):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            name = func.id if isinstance(func, ast.Name) else \
                func.attr if isinstance(func, ast.Attribute) else None
            return name in _BYTES_RETURNING
        if isinstance(node, ast.Name):
            return bool(_BYTES_NAMES.search(node.id.lower()))
        return False

    def check(self, ctx, project) -> Iterator[RawFinding]:
        for scope_node, compare in ctx.compares_with_function():
            if scope_node == "constant_time_equal":
                continue
            if len(compare.ops) != 1 or not isinstance(
                    compare.ops[0], (ast.Eq, ast.NotEq)):
                continue
            operands = (compare.left, compare.comparators[0])
            if any(self._excluded(op) for op in operands):
                continue
            if any(self._bytes_evidence(op) for op in operands):
                yield self.finding(
                    compare, "==/!= on byte strings is an early-exit "
                             "timing oracle; use constant_time_equal")


RULES = (ConstantTimeCompareRule,)
