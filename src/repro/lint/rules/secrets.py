"""REP3xx — secret hygiene.

An embedded DRM agent's keys (``K_DEV``, KEKs, ``K_MAC``/``K_REK``/
``K_CEK``) must never reach logs, exception text, or any interpolated
string — a stack trace in a bug report is a key-extraction channel.
And inside :mod:`repro.crypto`, tag/digest/padding bytes must be
compared through :func:`~repro.crypto.encoding.constant_time_equal`;
a raw ``==`` is an early-exit timing oracle (the discipline
``docs/static-analysis.md`` cross-references from the paper's
embedded-implementation setting).
"""

import ast
import re
from typing import Iterator

from .base import RawFinding, Rule

#: Identifier segments that mark a value as key material.
_SECRET_SEGMENTS = re.compile(
    r"(?:^|_)(?:key|keys|kek|kdev|kmac|krek|kcek|secret|secrets|"
    r"password|passwd|token|private)(?:_|$)")

#: Identifiers that match the segment regex but are not secret values.
_SECRET_EXCEPTIONS = re.compile(
    r"public|_id$|_ids$|_name$|_label$|keyword")

#: Logger-ish receivers for REP301's log-call check.
_LOGGER_NAMES = frozenset({"log", "logger", "logging"})
_LOG_METHODS = frozenset({"debug", "info", "warning", "warn", "error",
                          "exception", "critical", "log"})

#: Calls that evidently return bytes (digest/MAC/codec outputs).
_BYTES_RETURNING = frozenset({
    "sha1", "hmac_sha1", "mgf1", "kdf2", "wrap", "unwrap", "bytes",
    "bytearray", "encrypt_block", "decrypt_block", "i2osp",
})

#: Names that conventionally hold digest/tag/IV byte strings.
_BYTES_NAMES = re.compile(
    r"(?:^|_)(?:iv|icv|tag|mac|digest|hash|salt|pad|padding|mask|"
    r"signature|sig|key|kek)(?:_|$)")


def _is_secret_name(identifier: str) -> bool:
    lowered = identifier.lower()
    return bool(_SECRET_SEGMENTS.search(lowered)) \
        and not _SECRET_EXCEPTIONS.search(lowered)


#: Calls whose result reveals only metadata about their argument.
_METADATA_CALLS = frozenset({"len", "type", "id"})


def _walk_skipping_attributes(node: ast.AST):
    """``ast.walk`` variant skipping attribute values and metadata calls.

    Attribute accesses (``key.bit_length``, ``private_key.modulus_octets``)
    are deliberately skipped: interpolating a *property of* a key object
    is routine (sizes, ids); interpolating the name itself is the leak.
    Likewise ``len(key)``/``type(key)`` interpolate metadata, not bytes.
    """
    stack = [node]
    while stack:
        current = stack.pop()
        yield current
        if isinstance(current, ast.Call) \
                and isinstance(current.func, ast.Name) \
                and current.func.id in _METADATA_CALLS:
            continue
        for child in ast.iter_child_nodes(current):
            if isinstance(current, ast.Attribute) \
                    and child is current.value:
                continue
            stack.append(child)


class NoSecretInterpolationRule(Rule):
    """REP301: key material must not reach strings, logs, exceptions."""

    id = "REP301"
    title = ("secret-named variable interpolated into a string, log "
             "call, or exception message — a key-extraction channel")

    def _scan_expression(self, expression, context):
        for child in _walk_skipping_attributes(expression):
            if isinstance(child, ast.Name) and _is_secret_name(child.id):
                yield self.finding(
                    child, "secret-named variable %r %s" % (child.id,
                                                            context))

    def check(self, ctx, project) -> Iterator[RawFinding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.JoinedStr):
                for value in node.values:
                    if isinstance(value, ast.FormattedValue):
                        yield from self._scan_expression(
                            value.value,
                            "interpolated into an f-string")
            elif isinstance(node, ast.Raise) and node.exc is not None:
                for arg in getattr(node.exc, "args", []) or []:
                    yield from self._scan_expression(
                        arg, "interpolated into an exception message")
            elif isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and node.func.attr in _LOG_METHODS \
                    and isinstance(node.func.value, ast.Name) \
                    and node.func.value.id in _LOGGER_NAMES:
                for arg in node.args:
                    yield from self._scan_expression(
                        arg, "passed to a log call")


class ConstantTimeCompareRule(Rule):
    """REP302: no ``==``/``!=`` on byte strings inside repro.crypto."""

    id = "REP302"
    title = ("variable-time ==/!= on digest/tag/padding bytes in "
             "repro.crypto; use constant_time_equal")
    default_scopes = ("repro.crypto",)

    @staticmethod
    def _excluded(node) -> bool:
        """Operand shapes that are evidently not byte-string values."""
        if isinstance(node, ast.Constant) \
                and not isinstance(node.value, bytes):
            return True
        if isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Name) \
                and node.func.id == "len":
            return True
        if isinstance(node, ast.BinOp):
            return True
        if isinstance(node, ast.Attribute):
            return True
        return False

    @staticmethod
    def _bytes_evidence(node) -> bool:
        """Operand shapes that evidently produce byte strings."""
        if isinstance(node, ast.Constant) \
                and isinstance(node.value, bytes):
            return True
        if isinstance(node, ast.Subscript) \
                and isinstance(node.slice, ast.Slice):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            name = func.id if isinstance(func, ast.Name) else \
                func.attr if isinstance(func, ast.Attribute) else None
            return name in _BYTES_RETURNING
        if isinstance(node, ast.Name):
            return bool(_BYTES_NAMES.search(node.id.lower()))
        return False

    def check(self, ctx, project) -> Iterator[RawFinding]:
        for scope_node, compare in ctx.compares_with_function():
            if scope_node == "constant_time_equal":
                continue
            if len(compare.ops) != 1 or not isinstance(
                    compare.ops[0], (ast.Eq, ast.NotEq)):
                continue
            operands = (compare.left, compare.comparators[0])
            if any(self._excluded(op) for op in operands):
                continue
            if any(self._bytes_evidence(op) for op in operands):
                yield self.finding(
                    compare, "==/!= on byte strings is an early-exit "
                             "timing oracle; use constant_time_equal")


RULES = (NoSecretInterpolationRule, ConstantTimeCompareRule)
