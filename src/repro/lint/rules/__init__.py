"""Rule registry: every rule family, in id order.

Adding a rule = writing a :class:`~repro.lint.rules.base.Rule` subclass
in one of the family modules and listing it in that module's ``RULES``
tuple; the engine, the CLI ``--list-rules`` output, suppression
validation, and the docs table all derive from this registry.
"""

from typing import Dict, Tuple, Type

from . import (contracts, determinism, durability, metering,
               observability, secrets, simproto, taint, trust)
from .base import RawFinding, Rule

#: All rule classes, ordered by id.
RULE_CLASSES: Tuple[Type[Rule], ...] = tuple(sorted(
    determinism.RULES + metering.RULES + secrets.RULES + contracts.RULES
    + durability.RULES + observability.RULES + trust.RULES
    + taint.RULES + simproto.RULES,
    key=lambda rule: rule.id))


def all_rules() -> Tuple[Rule, ...]:
    """Fresh instances of every registered rule."""
    return tuple(cls() for cls in RULE_CLASSES)


def rules_by_id() -> Dict[str, Rule]:
    """Registered rules keyed by id."""
    return {rule.id: rule for rule in all_rules()}


__all__ = ["RULE_CLASSES", "RawFinding", "Rule", "all_rules",
           "rules_by_id"]
