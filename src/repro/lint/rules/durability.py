"""REP5xx — durability of device storage.

:mod:`repro.store` made persistence transactional: every mutation of
:class:`~repro.drm.storage.DeviceStorage` is write-ahead journaled, so
a power loss either replays the whole transaction or none of it. That
guarantee only holds for mutations that go *through* the storage API.
A ``agent.storage.installed_ros[x] = y`` from protocol code is
functionally identical on volatile storage and silently non-durable on
journaled storage — exactly the class of bug the crash sweep exists to
catch. REP501 flags direct mutation of the storage dictionaries from
``repro.drm``; REP502 flags in-place edits of an installed RO's
constraint state (the snapshot-then-``set_ro_state`` pattern is the
journaled path; partial in-place decrements can be half-applied at a
crash point).

Reads (``.get()``, ``.values()``, membership tests) are fine anywhere:
durability constrains writes, not lookups.
"""

import ast
from typing import Iterator

from .base import RawFinding, Rule

#: DeviceStorage's persistent dictionaries/sets.
_STORAGE_FIELDS = frozenset({
    "dcfs", "installed_ros", "ri_contexts", "domain_contexts",
    "replay_cache",
})

#: Method names that mutate a dict/set in place.
_MUTATOR_METHODS = frozenset({
    "add", "clear", "discard", "pop", "popitem", "remove",
    "setdefault", "update",
})

#: The storage module itself applies buffered ops; it is the one place
#: allowed to touch the dictionaries directly.
_STORAGE_MODULE = "repro.drm.storage"

#: Attribute names of an installed RO's mutable constraint state.
_STATE_FIELDS = frozenset({"remaining_counts", "first_use"})


def _attribute_name(node) -> str:
    """The trailing attribute name of ``node``, or empty."""
    return node.attr if isinstance(node, ast.Attribute) else ""


def _is_state_chain(node) -> bool:
    """True for ``<expr>.state.remaining_counts``-shaped chains."""
    return (isinstance(node, ast.Attribute)
            and node.attr in _STATE_FIELDS
            and _attribute_name(node.value) == "state")


class NoDirectStorageMutationRule(Rule):
    """REP501: storage dicts are mutated only via the storage API."""

    id = "REP501"
    title = ("repro.drm mutates a DeviceStorage dictionary directly; "
             "on journaled storage the write bypasses the write-ahead "
             "journal and is lost at power loss")
    default_scopes = ("repro.drm",)

    @staticmethod
    def _storage_field(node) -> str:
        """The storage field a subscript/call receiver names, or ''."""
        if isinstance(node, ast.Subscript):
            node = node.value
        name = _attribute_name(node)
        return name if name in _STORAGE_FIELDS else ""

    def check(self, ctx, project) -> Iterator[RawFinding]:
        if ctx.name == _STORAGE_MODULE:
            return
        for node in ast.walk(ctx.tree):
            field = ""
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.Delete)):
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target]
                           if isinstance(node, ast.AugAssign)
                           else node.targets)
                for target in targets:
                    if isinstance(target, ast.Subscript):
                        field = self._storage_field(target) or field
            elif isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and node.func.attr in _MUTATOR_METHODS:
                field = self._storage_field(node.func.value)
            if field:
                yield self.finding(
                    node, "direct mutation of storage.%s bypasses the "
                          "transactional storage API; use the "
                          "DeviceStorage mutator (journaled and "
                          "crash-atomic) instead" % field)


class NoInPlaceStateMutationRule(Rule):
    """REP502: constraint state is replaced, never edited in place."""

    id = "REP502"
    title = ("repro.drm edits an installed RO's constraint state in "
             "place; snapshot it and write it back with set_ro_state "
             "so the update is journaled atomically")
    default_scopes = ("repro.drm",)

    def check(self, ctx, project) -> Iterator[RawFinding]:
        for node in ast.walk(ctx.tree):
            hit = None
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.Delete)):
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target]
                           if isinstance(node, ast.AugAssign)
                           else node.targets)
                for target in targets:
                    sub = (target.value
                           if isinstance(target, ast.Subscript)
                           else target)
                    if _is_state_chain(sub):
                        hit = sub
            elif isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and node.func.attr in _MUTATOR_METHODS \
                    and _is_state_chain(node.func.value):
                hit = node.func.value
            if hit is not None:
                yield self.finding(
                    node, "in-place edit of .state.%s can be "
                          "half-applied at a crash point; snapshot() "
                          "the state, mutate the copy, and commit it "
                          "via set_ro_state" % hit.attr)


RULES = (NoDirectStorageMutationRule, NoInPlaceStateMutationRule)
