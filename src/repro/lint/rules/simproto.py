"""REP9xx — resource protocol of the discrete-event kernel.

PR 7's kernel runs generator processes that ``yield Acquire(r)`` /
``yield Release(r)`` against bounded :class:`~repro.sim.kernel.Resource`
queues. The kernel cannot release on a process's behalf — an exception
raised while a grant is held leaks the server slot forever, silently
deadlocking every queued process behind it. These rules are the
race-detector analogue for that cooperative concurrency:

* **REP901** — an ``Acquire`` whose matching ``Release`` is not in a
  ``finally`` block while other yields sit inside the critical section
  (each suspension is a point where service code can raise), or an
  ``Acquire`` with no matching ``Release`` at all.
* **REP902** — a nested ``Acquire`` inside a held critical section: the
  classic lock-ordering deadlock, two processes each holding one
  resource and queued on the other. (``Wait`` while holding is service
  time and perfectly legitimate.)
* **REP903** — kernel-owned event-loop state (``now``, the heap, run
  queues, stream tables) assigned from outside
  :mod:`repro.sim.kernel`: mutating it behind the scheduler's back
  breaks replay determinism and the FIFO-stability invariant.
* **REP904** — an ``Acquire`` with a timeout whose
  :data:`~repro.sim.kernel.TIMED_OUT` expiry sentinel is never
  checked: the process would treat an expired wait as a real grant —
  serving a request whose client already left, then releasing a slot
  it never held. The sent value must be compared ``is`` /
  ``is not TIMED_OUT`` in the function itself, or escape via
  ``return`` to a caller that does (one caller level, resolved
  through the PR 8 call graph's per-function sentinel-test index).

Resources are keyed by the *text* of the expression passed to
``Acquire``/``Release`` (``self.signing`` matches ``self.signing``), so
the match is syntactic — exactly the level at which a reviewer pairs
them up.
"""

import ast
from typing import Iterator, List, Optional, Tuple

from .base import RawFinding, Rule

#: Kernel command constructors, matched by name at the yield site.
_ACQUIRE = "Acquire"
_RELEASE = "Release"

#: Fields the kernel owns; assigning them outside repro.sim.kernel
#: desynchronizes the scheduler.
_KERNEL_FIELDS = frozenset({
    "now", "_seq", "_heap", "_pending", "_busy", "_queue", "log",
    "events_executed", "_streams", "_processes", "_resources",
    "_running",
})

#: Receiver names that conventionally hold the kernel instance.
_KERNEL_NAMES = frozenset({"kernel", "kern", "loop"})


def _command_call(node: ast.AST) -> Optional[Tuple[str, str]]:
    """(command name, resource key) when ``node`` is Acquire/Release."""
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    name = func.id if isinstance(func, ast.Name) else \
        func.attr if isinstance(func, ast.Attribute) else None
    if name not in (_ACQUIRE, _RELEASE):
        return None
    if node.args:
        key = ast.dump(node.args[0])
    else:
        key = ast.dump(node)
    return name, key


class _Event:
    """One yield inside a generator body, in source order."""

    __slots__ = ("kind", "key", "node", "in_finally")

    def __init__(self, kind: str, key: str, node: ast.AST,
                 in_finally: bool) -> None:
        self.kind = kind          # "acquire" | "release" | "yield"
        self.key = key
        self.node = node
        self.in_finally = in_finally


def _collect_events(body: List[ast.stmt]) -> List[_Event]:
    """All yields of a function body, in source order, finally-tagged."""
    events: List[_Event] = []

    def walk_expr(node: ast.AST, in_finally: bool) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda, ast.ClassDef)):
            return
        if isinstance(node, ast.Yield):
            command = _command_call(node.value) \
                if node.value is not None else None
            if command is not None:
                kind = "acquire" if command[0] == _ACQUIRE \
                    else "release"
                events.append(_Event(kind, command[1], node,
                                     in_finally))
            else:
                events.append(_Event("yield", "", node, in_finally))
            if node.value is not None:
                walk_expr(node.value, in_finally)
            return
        for child in ast.iter_child_nodes(node):
            walk_expr(child, in_finally)

    def walk_stmts(statements: List[ast.stmt],
                   in_finally: bool) -> None:
        for statement in statements:
            if isinstance(statement, (ast.FunctionDef,
                                      ast.AsyncFunctionDef,
                                      ast.ClassDef)):
                continue
            if isinstance(statement, ast.Try):
                walk_stmts(statement.body, in_finally)
                for handler in statement.handlers:
                    walk_stmts(handler.body, in_finally)
                walk_stmts(statement.orelse, in_finally)
                walk_stmts(statement.finalbody, True)
                continue
            for child in ast.iter_child_nodes(statement):
                if isinstance(child, ast.stmt):
                    walk_stmts([child], in_finally)
                else:
                    walk_expr(child, in_finally)

    walk_stmts(body, False)
    return events


def _render_key(node: ast.AST) -> str:
    """Readable form of the resource expression for messages."""
    command = node.value if isinstance(node, ast.Yield) else node
    if isinstance(command, ast.Call) and command.args:
        try:
            return ast.unparse(command.args[0])
        except Exception:
            return "<resource>"
    return "<resource>"


class ReleaseOnExceptionPathsRule(Rule):
    """REP901: every Acquire must release on exception paths too."""

    id = "REP901"
    title = ("yield Acquire(...) whose matching Release is missing or "
             "not in a finally block while the critical section "
             "contains further yields — an exception while holding "
             "leaks the grant and deadlocks the queue")
    default_scopes = ("repro.sim", "repro.usecases")

    def check(self, ctx, project) -> Iterator[RawFinding]:
        for function in ctx.functions():
            events = _collect_events(function.body)
            for index, event in enumerate(events):
                if event.kind != "acquire":
                    continue
                release_at = None
                for later in range(index + 1, len(events)):
                    if events[later].kind == "release" \
                            and events[later].key == event.key:
                        release_at = later
                        break
                resource = _render_key(event.node)
                if release_at is None:
                    yield self.finding(
                        event.node,
                        "Acquire(%s) has no matching yield "
                        "Release(%s) in this process; the grant can "
                        "never be returned" % (resource, resource))
                    continue
                intervening = any(
                    e.kind in ("yield", "acquire")
                    for e in events[index + 1:release_at])
                if intervening \
                        and not events[release_at].in_finally:
                    yield self.finding(
                        event.node,
                        "Release(%s) runs on the normal path only; "
                        "an exception at any yield inside the "
                        "critical section leaks the grant — move the "
                        "Release into a try/finally" % resource)


class NoNestedAcquireRule(Rule):
    """REP902: no Acquire while already holding a resource."""

    id = "REP902"
    title = ("yield Acquire(...) inside a held critical section — two "
             "processes each holding one resource and queued on the "
             "other deadlock the kernel")
    default_scopes = ("repro.sim", "repro.usecases")

    def check(self, ctx, project) -> Iterator[RawFinding]:
        for function in ctx.functions():
            events = _collect_events(function.body)
            for index, event in enumerate(events):
                if event.kind != "acquire":
                    continue
                release_at = len(events)
                for later in range(index + 1, len(events)):
                    if events[later].kind == "release" \
                            and events[later].key == event.key:
                        release_at = later
                        break
                for inner in events[index + 1:release_at]:
                    if inner.kind == "acquire" \
                            and inner.key != event.key:
                        yield self.finding(
                            inner.node,
                            "Acquire(%s) while still holding %s is a "
                            "lock-ordering deadlock hazard; release "
                            "first or acquire both up front"
                            % (_render_key(inner.node),
                               _render_key(event.node)))


class NoKernelStateMutationRule(Rule):
    """REP903: event-loop state is written only by the kernel."""

    id = "REP903"
    title = ("kernel-owned scheduler state (now, heap, queues, "
             "streams) assigned outside repro.sim.kernel — breaks "
             "replay determinism and FIFO stability")
    default_scopes = ("repro.sim", "repro.usecases", "repro.analysis")

    #: The one module allowed to write these fields.
    _OWNER = "repro.sim.kernel"

    def _kernel_receivers(self, ctx) -> frozenset:
        """Local names bound to a Kernel instance in this module."""
        names = set(_KERNEL_NAMES)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Assign) \
                    and isinstance(node.value, ast.Call):
                func = node.value.func
                callee = func.id if isinstance(func, ast.Name) else \
                    func.attr if isinstance(func, ast.Attribute) \
                    else None
                if callee == "Kernel":
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            names.add(target.id)
        return frozenset(names)

    def check(self, ctx, project) -> Iterator[RawFinding]:
        if ctx.name == self._OWNER:
            return
        receivers = self._kernel_receivers(ctx)
        for node in ast.walk(ctx.tree):
            targets = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            for target in targets:
                if isinstance(target, ast.Attribute) \
                        and target.attr in _KERNEL_FIELDS \
                        and isinstance(target.value, ast.Name) \
                        and target.value.id in receivers:
                    yield self.finding(
                        target,
                        "assignment to kernel-owned field %r from "
                        "outside the kernel; only repro.sim.kernel "
                        "may mutate scheduler state" % target.attr)


#: The expiry sentinel's name; matched as a bare name or attribute
#: (``TIMED_OUT`` and ``kernel.TIMED_OUT`` both count).
_TIMED_OUT = "TIMED_OUT"


def _acquire_timeout(call: ast.Call) -> Optional[ast.AST]:
    """The timeout expression of an ``Acquire`` call, if armed.

    ``None`` when no timeout is passed or it is the literal ``None``
    (an untimed acquire can never see the sentinel).
    """
    timeout: Optional[ast.AST] = None
    if len(call.args) > 1:
        timeout = call.args[1]
    for keyword in call.keywords:
        if keyword.arg == "timeout":
            timeout = keyword.value
    if isinstance(timeout, ast.Constant) and timeout.value is None:
        return None
    return timeout


def _timed_acquires(function) -> List[Tuple[ast.Yield,
                                            Optional[str], bool]]:
    """``(yield node, bound name, discarded)`` per timed Acquire.

    Only the function's own body (nested defs are visited as their own
    functions). ``bound`` is the single name the sent value lands in
    for the plain ``grant = yield Acquire(...)`` shape; ``discarded``
    marks a bare expression statement, whose sent value nothing can
    ever observe.
    """
    sites: List[Tuple[ast.Yield, Optional[str], bool]] = []

    def timed(node: ast.AST) -> Optional[ast.Yield]:
        if not isinstance(node, ast.Yield) or node.value is None:
            return None
        command = _command_call(node.value)
        if command is None or command[0] != _ACQUIRE:
            return None
        if _acquire_timeout(node.value) is None:
            return None
        return node

    def walk(current: ast.AST) -> None:
        for child in ast.iter_child_nodes(current):
            if isinstance(child, (ast.FunctionDef,
                                  ast.AsyncFunctionDef, ast.Lambda,
                                  ast.ClassDef)):
                continue
            if isinstance(child, ast.Assign) \
                    and timed(child.value) is not None:
                target = child.targets[0]
                bound = target.id \
                    if len(child.targets) == 1 \
                    and isinstance(target, ast.Name) else None
                sites.append((timed(child.value), bound, False))
                continue
            if isinstance(child, ast.Expr) \
                    and timed(child.value) is not None:
                sites.append((timed(child.value), None, True))
                continue
            node = timed(child)
            if node is not None:
                # Consumed inline (inside a comparison or call): the
                # local sentinel-test scan decides.
                sites.append((node, None, False))
                continue
            walk(child)

    walk(function)
    return sites


def _tests_timed_out(function) -> bool:
    """Whether this body compares something ``is (not) TIMED_OUT``."""
    def walk(current: ast.AST) -> bool:
        for child in ast.iter_child_nodes(current):
            if isinstance(child, (ast.FunctionDef,
                                  ast.AsyncFunctionDef, ast.Lambda,
                                  ast.ClassDef)):
                continue
            if isinstance(child, ast.Compare) \
                    and any(isinstance(op, (ast.Is, ast.IsNot))
                            for op in child.ops):
                for comparator in [child.left] + child.comparators:
                    name = comparator.id \
                        if isinstance(comparator, ast.Name) else \
                        comparator.attr \
                        if isinstance(comparator, ast.Attribute) \
                        else None
                    if name == _TIMED_OUT:
                        return True
            if walk(child):
                return True
        return False

    return walk(function)


def _returns_name(function, bound: str) -> bool:
    """Whether ``bound`` escapes this body through a ``return``."""
    def walk(current: ast.AST) -> bool:
        for child in ast.iter_child_nodes(current):
            if isinstance(child, (ast.FunctionDef,
                                  ast.AsyncFunctionDef, ast.Lambda,
                                  ast.ClassDef)):
                continue
            if isinstance(child, ast.Return) \
                    and child.value is not None:
                for node in ast.walk(child.value):
                    if isinstance(node, ast.Name) \
                            and node.id == bound:
                        return True
            if walk(child):
                return True
        return False

    return walk(function)


class TimeoutSentinelHandledRule(Rule):
    """REP904: a timed Acquire must observe the TIMED_OUT sentinel."""

    id = "REP904"
    title = ("yield Acquire(..., timeout=...) whose TIMED_OUT expiry "
             "sentinel is never checked — an expired wait would be "
             "handled as a real grant, serving an abandoned request "
             "and releasing a slot the process never held")
    default_scopes = ("repro.sim", "repro.usecases")

    def _caller_tests(self, project, ctx, line: int) -> bool:
        """Whether any direct caller checks the sentinel.

        The escape hatch for ``return``-ed grants: the function at
        ``line`` of this module is resolved in the project call graph
        and its callers' pre-indexed ``sentinel_tests`` are consulted
        — one caller level, which is exactly how far a returned
        sentinel can travel before the repository's own conventions
        (wrap it in an outcome object) take over.
        """
        graph = getattr(project, "callgraph", None)
        if graph is None:
            return False
        target = None
        for fn in graph.functions_in_module(ctx.name):
            if fn.line == line:
                target = fn
                break
        if target is None:
            return False
        for caller in sorted(graph.functions):
            for site in graph.edges_from(caller):
                if site.callee != target.qualname:
                    continue
                node = graph.functions.get(caller)
                if node is not None \
                        and _TIMED_OUT in node.sentinel_tests:
                    return True
        return False

    def check(self, ctx, project) -> Iterator[RawFinding]:
        for function in ctx.functions():
            sites = _timed_acquires(function)
            if not sites:
                continue
            handled_here = _tests_timed_out(function)
            for node, bound, discarded in sites:
                resource = _render_key(node)
                if discarded:
                    yield self.finding(
                        node,
                        "the sent value of Acquire(%s, timeout=...) "
                        "is discarded; an in-queue expiry (TIMED_OUT) "
                        "can never be observed" % resource)
                    continue
                if handled_here:
                    continue
                if bound is not None \
                        and _returns_name(function, bound) \
                        and self._caller_tests(project, ctx,
                                               function.lineno):
                    continue
                yield self.finding(
                    node,
                    "grant of Acquire(%s, timeout=...) is never "
                    "compared `is TIMED_OUT` here%s; an expired wait "
                    "would be treated as a real grant"
                    % (resource,
                       " or in any caller it escapes to"
                       if bound is not None
                       and _returns_name(function, bound) else ""))


RULES = (ReleaseOnExceptionPathsRule, NoNestedAcquireRule,
         NoKernelStateMutationRule, TimeoutSentinelHandledRule)
