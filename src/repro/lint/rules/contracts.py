"""REP4xx — error contracts.

PR 1 hardened the wire layer behind typed
:class:`~repro.drm.errors.WireDecodeError` subclasses so the session
layer can tell retryable corruption from semantic refusal. That
contract erodes one ``raise ValueError`` at a time; these rules freeze
it. Bare ``except:`` additionally swallows ``KeyboardInterrupt`` /
``SystemExit``, and a silent ``except ...: pass`` in protocol code
converts a fault the session layer should price into silent
state corruption.
"""

import ast
from typing import Iterator

from .base import RawFinding, Rule

#: Builtin exception types a wire-decode path must not raise.
_BUILTIN_RAISES = frozenset({
    "Exception", "ValueError", "TypeError", "KeyError", "IndexError",
    "RuntimeError", "AssertionError",
})

#: Function-name shapes that identify a wire-decode path.
_DECODE_NAME_PARTS = ("decode", "parse", "from_bytes", "from_wire",
                      "unpack")


class NoBareExceptRule(Rule):
    """REP401: no bare ``except:`` anywhere."""

    id = "REP401"
    title = ("bare except: catches SystemExit/KeyboardInterrupt and "
             "hides programming errors; name the exception types")

    def check(self, ctx, project) -> Iterator[RawFinding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.finding(
                    node, "bare except: — name the exception types "
                          "this handler is meant to absorb")


class NoSilentSwallowRule(Rule):
    """REP402: no ``except ...: pass`` in protocol code."""

    id = "REP402"
    title = ("silently swallowed exception in protocol code; handle "
             "it, re-raise typed, or record the fault")
    default_scopes = ("repro.drm", "repro.usecases")

    def check(self, ctx, project) -> Iterator[RawFinding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            body = [stmt for stmt in node.body
                    if not (isinstance(stmt, ast.Expr)
                            and isinstance(stmt.value, ast.Constant)
                            and isinstance(stmt.value.value, str))]
            if body and all(isinstance(stmt, ast.Pass) for stmt in body):
                yield self.finding(
                    node, "exception handled with pass — protocol "
                          "faults must surface or be recorded, never "
                          "vanish")


class TypedWireDecodeErrorRule(Rule):
    """REP403: wire-decode paths raise typed ``WireDecodeError``."""

    id = "REP403"
    title = ("wire-decode path raises a builtin exception; the session "
             "layer needs typed WireDecodeError subclasses to "
             "classify retryable corruption")
    default_scopes = ("repro.drm",)

    @staticmethod
    def _is_decode_function(name: str) -> bool:
        lowered = name.lower()
        return any(part in lowered for part in _DECODE_NAME_PARTS)

    def check(self, ctx, project) -> Iterator[RawFinding]:
        for function in ctx.functions():
            if not self._is_decode_function(function.name):
                continue
            for node in ast.walk(function):
                if not isinstance(node, ast.Raise) or node.exc is None:
                    continue
                exc = node.exc
                name = None
                if isinstance(exc, ast.Call) \
                        and isinstance(exc.func, ast.Name):
                    name = exc.func.id
                elif isinstance(exc, ast.Name):
                    name = exc.id
                if name in _BUILTIN_RAISES:
                    yield self.finding(
                        node, "raise %s in wire-decode path %r; raise "
                              "a WireDecodeError subclass so the "
                              "session layer can classify the fault"
                              % (name, function.name))


RULES = (NoBareExceptRule, NoSilentSwallowRule, TypedWireDecodeErrorRule)
