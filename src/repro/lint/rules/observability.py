"""REP6xx — observability discipline in library code.

The tracing layer (``repro.obs``) exists so the library can report what
happened without side channels: spans and events on the virtual cycle
timeline, counters in a mergeable registry. Ad-hoc ``print()`` calls or
``logging`` handlers bypass that contract — they interleave with the
CLI's rendered artifacts, are invisible to exporters, and (for
``logging``) drag wall-clock timestamps into otherwise deterministic
output. Library layers must route diagnostics through ``repro.obs``
events; only the CLI and the lint tool's own reporters talk to stdout,
and they are exempted via ``[tool.repro-lint.scopes]``.
"""

import ast
from typing import Iterator, Tuple

from .base import RawFinding, Rule

#: Scope shared by the family: every library layer. The CLI
#: (``repro.cli``) and the lint tool's reporters (``repro.lint``) are
#: deliberately absent — rendering text for humans is their job.
_LIBRARY_SCOPES: Tuple[str, ...] = (
    "repro.core", "repro.crypto", "repro.drm", "repro.store",
    "repro.usecases", "repro.analysis", "repro.obs",
)


class NoPrintRule(Rule):
    """REP601: no ``print()`` in library code."""

    id = "REP601"
    title = ("print() in library code; emit a repro.obs event (or "
             "return the text) instead")
    default_scopes = _LIBRARY_SCOPES

    def check(self, ctx, project) -> Iterator[RawFinding]:
        for node in ctx.calls():
            dotted = ctx.summary.dotted_call_path(node)
            if dotted in ("print", "builtins.print"):
                yield self.finding(
                    node, "print() bypasses the tracing layer; emit a "
                          "Tracer event or return the rendering")


class NoLoggingRule(Rule):
    """REP602: no ``logging`` in library code.

    Flagging the import (rather than each call) catches handler setup,
    ``getLogger`` aliases, and module-level loggers with one finding per
    module.
    """

    id = "REP602"
    title = ("logging import in library code; route diagnostics "
             "through repro.obs events")

    default_scopes = _LIBRARY_SCOPES

    def check(self, ctx, project) -> Iterator[RawFinding]:
        for imported in sorted(ctx.summary.imports.values(),
                               key=lambda name: (name.line, name.alias)):
            if imported.module == "logging" \
                    or imported.module.startswith("logging."):
                yield RawFinding(
                    line=imported.line, column=0,
                    message="import of %s in library code; wall-clock "
                            "log records break determinism — use "
                            "repro.obs events" % imported.module)


class SpanContextManagedRule(Rule):
    """REP603: ``Tracer.span()`` must be a ``with`` item.

    The tracer maintains an *open-span stack* so the profiler
    (:mod:`repro.obs.profile`) can fold spans into an exact call tree
    by parent links. The stack is balanced only when every
    ``span()`` call is entered and exited through its context manager:
    a span opened without ``with`` is never pushed/popped, so parent
    attribution silently corrupts — and the span never closes, so its
    duration stays zero. The rule flags any ``*.span(...)`` call on a
    tracer-ish receiver that is not directly a ``with`` item.
    """

    id = "REP603"
    title = ("Tracer.span() outside a with statement; the open-span "
             "stack (profiler parent links) requires context-managed "
             "spans")

    default_scopes = _LIBRARY_SCOPES + ("repro.sim",)

    @staticmethod
    def _receiver_is_tracerish(node: ast.Call) -> bool:
        """Whether the call's receiver chain names a tracer."""
        cursor = node.func
        if not isinstance(cursor, ast.Attribute):
            return False
        cursor = cursor.value
        while isinstance(cursor, ast.Attribute):
            if "tracer" in cursor.attr.lower():
                return True
            cursor = cursor.value
        return (isinstance(cursor, ast.Name)
                and "tracer" in cursor.id.lower())

    def check(self, ctx, project) -> Iterator[RawFinding]:
        managed = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    managed.add(id(item.context_expr))
        for node in ctx.calls():
            func = node.func
            if not (isinstance(func, ast.Attribute)
                    and func.attr == "span"):
                continue
            if not self._receiver_is_tracerish(node):
                continue
            if id(node) in managed:
                continue
            yield self.finding(
                node, "span() not context-managed; the open span "
                      "never pops from the tracer's stack, so "
                      "profiler parent links corrupt and the span "
                      "never closes")


RULES = (NoPrintRule, NoLoggingRule, SpanContextManagedRule)
