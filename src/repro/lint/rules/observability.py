"""REP6xx — observability discipline in library code.

The tracing layer (``repro.obs``) exists so the library can report what
happened without side channels: spans and events on the virtual cycle
timeline, counters in a mergeable registry. Ad-hoc ``print()`` calls or
``logging`` handlers bypass that contract — they interleave with the
CLI's rendered artifacts, are invisible to exporters, and (for
``logging``) drag wall-clock timestamps into otherwise deterministic
output. Library layers must route diagnostics through ``repro.obs``
events; only the CLI and the lint tool's own reporters talk to stdout,
and they are exempted via ``[tool.repro-lint.scopes]``.
"""

from typing import Iterator, Tuple

from .base import RawFinding, Rule

#: Scope shared by the family: every library layer. The CLI
#: (``repro.cli``) and the lint tool's reporters (``repro.lint``) are
#: deliberately absent — rendering text for humans is their job.
_LIBRARY_SCOPES: Tuple[str, ...] = (
    "repro.core", "repro.crypto", "repro.drm", "repro.store",
    "repro.usecases", "repro.analysis", "repro.obs",
)


class NoPrintRule(Rule):
    """REP601: no ``print()`` in library code."""

    id = "REP601"
    title = ("print() in library code; emit a repro.obs event (or "
             "return the text) instead")
    default_scopes = _LIBRARY_SCOPES

    def check(self, ctx, project) -> Iterator[RawFinding]:
        for node in ctx.calls():
            dotted = ctx.summary.dotted_call_path(node)
            if dotted in ("print", "builtins.print"):
                yield self.finding(
                    node, "print() bypasses the tracing layer; emit a "
                          "Tracer event or return the rendering")


class NoLoggingRule(Rule):
    """REP602: no ``logging`` in library code.

    Flagging the import (rather than each call) catches handler setup,
    ``getLogger`` aliases, and module-level loggers with one finding per
    module.
    """

    id = "REP602"
    title = ("logging import in library code; route diagnostics "
             "through repro.obs events")

    default_scopes = _LIBRARY_SCOPES

    def check(self, ctx, project) -> Iterator[RawFinding]:
        for imported in sorted(ctx.summary.imports.values(),
                               key=lambda name: (name.line, name.alias)):
            if imported.module == "logging" \
                    or imported.module.startswith("logging."):
                yield RawFinding(
                    line=imported.line, column=0,
                    message="import of %s in library code; wall-clock "
                            "log records break determinism — use "
                            "repro.obs events" % imported.module)


RULES = (NoPrintRule, NoLoggingRule)
