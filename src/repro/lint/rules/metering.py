"""REP2xx — metering completeness of the DRM and simulation layers.

The paper's cost model prices the operation trace a protocol run
leaves behind (``repro.core.meter.MeteredCrypto``). Any crypto a
``repro.drm`` or ``repro.sim`` module performs *outside* the provider
is functionally correct but invisible to the meter, so Table 1
silently under-counts. REP201 catches direct imports of
:mod:`repro.crypto` primitives; REP202 proves the stronger property
over the whole-program call graph: **no path** from an in-scope
function to a crypto primitive avoids the provider. The proof is by
reverse reachability — every function from which an unmetered
primitive is reachable without passing through ``repro.core.meter``
(or crypto-internal code) is *escaping*, and each in-scope call into
the escaping set is reported with the uncovered path as evidence.

Exception types (``repro.crypto.errors``) and pure data types/constants
(``KemCiphertext``, key classes, size constants) are allowed anywhere:
importing them executes nothing.
"""

from typing import Dict, Iterator, Optional, Tuple

from ..graph import (ALLOWED_CRYPTO_MODULES, ALLOWED_CRYPTO_NAMES,
                     CRYPTO_PACKAGE)
from .base import RawFinding, Rule

#: The one module sanctioned to wrap primitives: the provider itself.
_PROVIDER_MODULE = "repro.core.meter"

#: Longest uncovered path rendered in a finding message.
_MAX_WITNESS = 8


def _is_crypto_primitive(qualname: str) -> bool:
    """Whether calling this dotted target executes unmetered crypto."""
    if not (qualname == CRYPTO_PACKAGE
            or qualname.startswith(CRYPTO_PACKAGE + ".")):
        return False
    for allowed in ALLOWED_CRYPTO_MODULES:
        if qualname == allowed or qualname.startswith(allowed + "."):
            return False
    if any(part in ALLOWED_CRYPTO_NAMES
           for part in qualname.split(".")):
        return False
    return True


def _is_sanctioned(module: str) -> bool:
    """Modules allowed to touch primitives: the provider and crypto."""
    return (module == _PROVIDER_MODULE
            or module == CRYPTO_PACKAGE
            or module.startswith(CRYPTO_PACKAGE + "."))


def _escape_map(graph) -> Dict[str, Tuple[str, str]]:
    """``function -> (next hop, reached primitive)`` for escaping nodes.

    A function *escapes* when some call chain from it reaches a crypto
    primitive without passing through the metered provider. Computed by
    reverse BFS from primitive call targets; provider and
    crypto-internal functions never enter the set (their primitive use
    is sanctioned), so paths through them are pruned exactly as the
    soundness property requires.
    """
    reverse: Dict[str, list] = {}
    escaping: Dict[str, Tuple[str, str]] = {}
    frontier = []
    for qualname in sorted(graph.functions):
        fn = graph.functions[qualname]
        for site in graph.edges_from(qualname):
            reverse.setdefault(site.callee, []).append(qualname)
            if _is_crypto_primitive(site.callee) \
                    and not _is_sanctioned(fn.module) \
                    and qualname not in escaping:
                escaping[qualname] = (site.callee, site.callee)
                frontier.append(qualname)
    while frontier:
        current = frontier.pop(0)
        primitive = escaping[current][1]
        for caller in sorted(reverse.get(current, ())):
            if caller in escaping:
                continue
            fn = graph.functions.get(caller)
            if fn is None or _is_sanctioned(fn.module):
                continue
            escaping[caller] = (current, primitive)
            frontier.append(caller)
    return escaping


def _witness(escaping: Dict[str, Tuple[str, str]],
             start: str) -> str:
    """Render the uncovered path from ``start`` to its primitive."""
    hops = [start]
    cursor = start
    while cursor in escaping and len(hops) < _MAX_WITNESS:
        cursor = escaping[cursor][0]
        hops.append(cursor)
    if cursor in escaping:
        hops.append("...")
        hops.append(escaping[start][1])
    return " -> ".join(hops)


class NoDirectCryptoImportRule(Rule):
    """REP201: metered layers must not import crypto primitives."""

    id = "REP201"
    title = ("repro.drm/repro.sim imports a repro.crypto primitive "
             "directly; route it through the PlainCrypto/MeteredCrypto "
             "provider so the cost model prices it")
    default_scopes = ("repro.drm", "repro.sim")

    def check(self, ctx, project) -> Iterator[RawFinding]:
        for imported in ctx.summary.crypto_imports:
            what = imported.dotted
            yield RawFinding(
                line=imported.line, column=0,
                message="direct import of %s bypasses the metered "
                        "crypto provider; hashing/encryption done "
                        "with it never appears in priced traces"
                        % what)


class NoTransitiveCryptoEscapeRule(Rule):
    """REP202: no call path may reach primitives around the provider."""

    id = "REP202"
    title = ("a call path from repro.drm/repro.sim reaches repro.crypto "
             "primitives without passing through MeteredCrypto — a "
             "transitive metering escape, proven over the call graph")
    default_scopes = ("repro.drm", "repro.sim")

    @staticmethod
    def _callee_module(graph, callee: str) -> Optional[str]:
        fn = graph.functions.get(callee)
        if fn is not None:
            return fn.module
        return None

    def check(self, ctx, project) -> Iterator[RawFinding]:
        graph = project.callgraph
        if graph is None:
            return
        escaping = getattr(project, "_rep202_escaping", None)
        if escaping is None:
            escaping = _escape_map(graph)
            project._rep202_escaping = escaping
        in_scope = self.default_scopes
        for fn in graph.functions_in_module(ctx.name):
            for site in graph.edges_from(fn.qualname):
                if site.callee not in escaping:
                    continue
                if _is_crypto_primitive(site.callee):
                    # The direct edge is REP201's turf: the telltale
                    # import line is already flagged in this module.
                    continue
                callee_module = self._callee_module(graph, site.callee)
                if callee_module is not None and any(
                        callee_module == scope
                        or callee_module.startswith(scope + ".")
                        for scope in in_scope):
                    # The escaping callee is itself in a metered layer;
                    # its own frontier edge carries the finding.
                    continue
                yield RawFinding(
                    line=site.line, column=0,
                    message="call to %s escapes the metered provider; "
                            "uncovered path: %s -> %s"
                            % (site.callee, fn.qualname,
                               _witness(escaping, site.callee)))


RULES = (NoDirectCryptoImportRule, NoTransitiveCryptoEscapeRule)
