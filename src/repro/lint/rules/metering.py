"""REP2xx — metering completeness of the DRM layer.

The paper's cost model prices the operation trace a protocol run
leaves behind (``repro.core.meter.MeteredCrypto``). Any crypto a
``repro.drm`` module performs *outside* the provider is functionally
correct but invisible to the meter, so Table 1 silently under-counts.
REP201 catches direct imports of :mod:`repro.crypto` primitives;
REP202 uses the project import graph's per-function call summaries to
catch the transitive escape — calling a helper in a third module whose
body invokes primitives.

Exception types (``repro.crypto.errors``) and pure data types/constants
(``KemCiphertext``, key classes, size constants) are allowed anywhere:
importing them executes nothing.
"""

from typing import Iterator

from ..graph import CRYPTO_PACKAGE
from .base import RawFinding, Rule

#: The one module sanctioned to wrap primitives: the provider itself.
_PROVIDER_MODULE = "repro.core.meter"


class NoDirectCryptoImportRule(Rule):
    """REP201: drm modules must not import crypto primitives."""

    id = "REP201"
    title = ("repro.drm imports a repro.crypto primitive directly; "
             "route it through the PlainCrypto/MeteredCrypto provider "
             "so the cost model prices it")
    default_scopes = ("repro.drm",)

    def check(self, ctx, project) -> Iterator[RawFinding]:
        for imported in ctx.summary.crypto_imports:
            what = imported.dotted
            yield RawFinding(
                line=imported.line, column=0,
                message="direct import of %s bypasses the metered "
                        "crypto provider; hashing/encryption done "
                        "with it never appears in priced traces"
                        % what)


class NoTransitiveCryptoEscapeRule(Rule):
    """REP202: drm modules must not reach primitives via a helper."""

    id = "REP202"
    title = ("repro.drm calls a function in another module that "
             "invokes crypto primitives directly — a transitive "
             "metering escape")
    default_scopes = ("repro.drm",)

    def check(self, ctx, project) -> Iterator[RawFinding]:
        for node in ctx.calls():
            resolved = ctx.summary.resolve_call(node)
            if resolved is None:
                continue
            module, function = resolved
            if module.startswith("repro.drm") \
                    or module == _PROVIDER_MODULE \
                    or module == CRYPTO_PACKAGE \
                    or module.startswith(CRYPTO_PACKAGE + "."):
                # Intra-layer calls are REP201's problem in the callee;
                # the provider is the sanctioned wrapper; direct crypto
                # calls are already REP201 here.
                continue
            summary = project.summary(module)
            if summary is None:
                continue
            if function in summary.crypto_using_functions:
                yield self.finding(
                    node, "%s.%s invokes repro.crypto primitives "
                          "directly; calling it from repro.drm "
                          "escapes the metered provider transitively"
                          % (module, function))


RULES = (NoDirectCryptoImportRule, NoTransitiveCryptoEscapeRule)
