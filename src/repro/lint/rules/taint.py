"""REP8xx — interprocedural secret taint.

PR 3's REP301 flagged a secret-*named* variable interpolated on the
line where it was still visible under its telltale name. That
heuristic is blind to flow: pass ``kcek`` through a formatting helper
and the interpolation site sees only an innocent local. REP801 replaces
it with the :mod:`repro.lint.dataflow` engine — taint seeded at key
material (CEK/KEK/REK fields, private keys, DRBG/nonce outputs) is
tracked through assignments, string building, and *calls* (via
per-function summaries over the whole-program call graph) into sinks:
exception messages, tracer span/event attributes, metrics labels, log
calls, JSON serialization, and f-string interpolation. Interprocedural
findings carry the call path as evidence.

Sanitized values — ``len``/``type`` metadata, constant-time verdicts,
and stable-digest redactors (``fingerprint``/``redact``/``digest``) —
are clean by construction: publishing a fingerprint of a key is the
sanctioned way to name one in diagnostics.
"""

from typing import Iterator

from .base import RawFinding, Rule


class SecretFlowRule(Rule):
    """REP801: key material must not flow into an exported sink."""

    id = "REP801"
    title = ("key material flows (possibly through helper calls) into "
             "an exception message, trace attribute, metrics label, "
             "log call, JSON output, or interpolated string — a "
             "key-extraction channel; redact with a stable digest")

    def check(self, ctx, project) -> Iterator[RawFinding]:
        if project.dataflow is None:
            return
        for flow in project.dataflow.findings_for(ctx.name):
            yield RawFinding(line=flow.line, column=flow.column,
                             message=flow.message)


RULES = (SecretFlowRule,)
