"""REP7xx — adversarial robustness of the trust boundary.

The adversary sweep (:mod:`repro.adversary`) proves the zero-acceptance
invariant dynamically; this family guards it statically. The invariant
dies quietly the day a protocol path catches a trust failure and drops
it on the floor — ``except TrustError: pass`` turns a detected forgery
into an accepted message, and nothing downstream will notice. REP701
flags exception handlers in ``repro.drm`` that catch a trust-class
exception (``TrustError`` or a subclass) and swallow it: the handler
body neither raises, returns, nor calls anything — so ``pass``,
``continue``, and bare counter bumps are all caught, stricter than the
generic REP402 pass-only check. Handlers that abort (return/raise) or
delegate the decision (record the failure, trace it, trip a breaker)
are untouched — containment is fine, silence is not.
"""

import ast
from typing import Iterator

from .base import RawFinding, Rule

#: Exception names whose silent swallowing breaks the trust boundary.
_TRUST_EXCEPTIONS = frozenset({
    "TrustError", "CertificateExpiredError", "CertificateRevokedError",
})


def _caught_trust_name(node) -> str:
    """The trust-class exception ``except``-clause ``node`` catches.

    Handles bare names, dotted references (``errors.TrustError``) and
    tuples of either; returns the first trust-class name, or ``""``.
    """
    if node is None:
        return ""
    if isinstance(node, ast.Tuple):
        for element in node.elts:
            name = _caught_trust_name(element)
            if name:
                return name
        return ""
    if isinstance(node, ast.Attribute):
        return node.attr if node.attr in _TRUST_EXCEPTIONS else ""
    if isinstance(node, ast.Name):
        return node.id if node.id in _TRUST_EXCEPTIONS else ""
    return ""


def _is_silent(body) -> bool:
    """Whether a handler body swallows the caught failure.

    A handler participates in the trust decision when it aborts the
    flow (``raise``/``return``) or delegates to *anything* — recording
    the failure, tracing it, tripping a breaker are all calls. A body
    with none of those (``pass``, ``continue``, counter bumps) lets a
    detected forgery continue as if verification had passed.
    """
    for statement in body:
        for node in ast.walk(statement):
            if isinstance(node, (ast.Raise, ast.Return, ast.Call)):
                return False
    return True


class NoSwallowedTrustErrorRule(Rule):
    """REP701: trust failures are never silently swallowed."""

    id = "REP701"
    title = ("repro.drm catches a trust-class exception and discards "
             "it; a swallowed TrustError turns a detected forgery into "
             "an accepted message")
    default_scopes = ("repro.drm",)

    def check(self, ctx, project) -> Iterator[RawFinding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            caught = _caught_trust_name(node.type)
            if caught and _is_silent(node.body):
                yield self.finding(
                    node, "silently swallowed %s: a detected trust "
                          "failure must abort, retry or propagate — "
                          "an empty handler accepts forged material"
                          % caught)


RULES = (NoSwallowedTrustErrorRule,)
