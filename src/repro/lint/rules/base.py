"""Rule infrastructure: the base class and the raw finding shape.

A rule sees one module at a time (its AST plus the project-wide import
graph) and yields :class:`RawFinding` positions; the engine attaches
paths, snippets, suppressions, and baseline state. Scoping is by
module-name prefix so the same rule can be pointed at different layers
through configuration.
"""

from dataclasses import dataclass
from typing import Iterator, Tuple


@dataclass(frozen=True)
class RawFinding:
    """A rule hit before the engine decorates it."""

    line: int
    column: int
    message: str


class Rule:
    """Base class for all analyzer rules."""

    #: Unique id, e.g. ``"REP201"``; the suppression/baseline key.
    id: str = "REP000"

    #: One-line description of the invariant the rule protects.
    title: str = ""

    #: Module-name prefixes the rule applies to; empty = everywhere.
    default_scopes: Tuple[str, ...] = ()

    def check(self, ctx, project) -> Iterator[RawFinding]:
        """Yield findings for one module.

        ``ctx`` is the engine's :class:`~repro.lint.engine.ModuleContext`
        (name, tree, source, summary); ``project`` the
        :class:`~repro.lint.graph.ProjectGraph` over every scanned
        module.
        """
        raise NotImplementedError

    def finding(self, node, message: str) -> RawFinding:
        """A :class:`RawFinding` located at an AST node."""
        return RawFinding(line=node.lineno, column=node.col_offset,
                          message=message)
