"""REP1xx — determinism of priced and sharded paths.

The fleet engine's contract (``docs/fleet.md``) is that shard merges
are bit-identical for any worker count, and the cost model's contract
is that a (use case, seed) pair prices to the same trace every run.
Both die the moment wall-clock time, OS entropy, an unseeded RNG, or
set-iteration order leaks into ``repro.usecases`` or ``repro.analysis``.
"""

from typing import Iterator, Tuple

from .base import RawFinding, Rule

#: Scope shared by the family: the priced/sharded layers.
_DETERMINISM_SCOPES: Tuple[str, ...] = ("repro.usecases", "repro.analysis")

#: Wall-clock and monotonic-clock reads (canonical dotted paths).
_FORBIDDEN_CLOCKS = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

#: Entropy sources that bypass seeded RNG plumbing entirely.
_FORBIDDEN_ENTROPY = frozenset({
    "os.urandom", "os.getrandom", "uuid.uuid1", "uuid.uuid4",
    "random.SystemRandom", "secrets.token_bytes", "secrets.token_hex",
    "secrets.token_urlsafe", "secrets.randbelow", "secrets.choice",
})

#: Module-level ``random.*`` functions (hidden unseeded global state).
_FORBIDDEN_GLOBAL_RANDOM = frozenset({
    "random.random", "random.randint", "random.randrange",
    "random.choice", "random.choices", "random.shuffle",
    "random.sample", "random.uniform", "random.getrandbits",
    "random.gauss", "random.seed",
})


class NoWallClockRule(Rule):
    """REP101: no wall-clock reads where results must reproduce."""

    id = "REP101"
    title = ("wall-clock read in a priced/sharded path; use the "
             "simulation clock or take time as a parameter")
    default_scopes = _DETERMINISM_SCOPES

    def check(self, ctx, project) -> Iterator[RawFinding]:
        for node in ctx.calls():
            dotted = ctx.summary.dotted_call_path(node)
            if dotted in _FORBIDDEN_CLOCKS:
                yield self.finding(
                    node, "call to %s leaks wall-clock time into a "
                          "deterministic path" % dotted)


class NoUnseededRandomnessRule(Rule):
    """REP102: no OS entropy or unseeded RNGs in deterministic paths."""

    id = "REP102"
    title = ("unseeded or OS-entropy randomness in a priced/sharded "
             "path; derive a seeded Random/HmacDrbg instead")
    default_scopes = _DETERMINISM_SCOPES

    def check(self, ctx, project) -> Iterator[RawFinding]:
        for node in ctx.calls():
            dotted = ctx.summary.dotted_call_path(node)
            if dotted is None:
                continue
            if dotted in _FORBIDDEN_ENTROPY:
                yield self.finding(
                    node, "call to %s draws OS entropy; runs become "
                          "unreproducible" % dotted)
            elif dotted in _FORBIDDEN_GLOBAL_RANDOM:
                yield self.finding(
                    node, "call to %s uses the hidden global RNG; pass "
                          "a seeded random.Random instead" % dotted)
            elif dotted == "random.Random" and not node.args \
                    and not node.keywords:
                yield self.finding(
                    node, "random.Random() without a seed draws from "
                          "OS entropy; pass an explicit seed")


class NoSetIterationOrderRule(Rule):
    """REP103: no iteration over sets where order can reach output.

    Set iteration order depends on ``PYTHONHASHSEED`` for strings, so a
    loop over a set in a priced or sharded path is a latent
    bit-identity break. Wrapping the set in ``sorted(...)`` normalizes
    the order and satisfies the rule.
    """

    id = "REP103"
    title = ("iteration over a set leaks hash order into a "
             "deterministic path; wrap it in sorted(...)")
    default_scopes = _DETERMINISM_SCOPES

    @staticmethod
    def _is_set_expression(node) -> bool:
        import ast
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        return (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in ("set", "frozenset"))

    def check(self, ctx, project) -> Iterator[RawFinding]:
        import ast
        for node in ast.walk(ctx.tree):
            iters = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp,
                                   ast.DictComp, ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            for iter_node in iters:
                if self._is_set_expression(iter_node):
                    yield self.finding(
                        iter_node, "iterating a set directly; order "
                                   "depends on PYTHONHASHSEED — use "
                                   "sorted(...)")


RULES = (NoWallClockRule, NoUnseededRandomnessRule,
         NoSetIterationOrderRule)
