"""Inline suppressions: ``# repro: allow[REPnnn] -- justification``.

A suppression silences the named rule(s) on its own line, or — when the
comment stands alone — on the next line of code. The justification text
after ``--`` is **mandatory**: a suppression without one does not
suppress anything and is itself reported (REP002), because an allow
nobody can audit is a convention, and conventions are exactly what the
analyzer exists to replace. A suppression naming an unknown rule is
reported as REP001 (it would otherwise rot silently when rules are
renamed).
"""

import io
import re
import tokenize
from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

#: ``# repro: allow[REP101]`` or ``# repro: allow[REP101,REP102] -- why``.
#: Matched against COMMENT tokens only, so prose in docstrings that
#: *describes* the syntax is never mistaken for a suppression.
_ALLOW_RE = re.compile(
    r"^#\s*repro:\s*allow\[([A-Za-z0-9_,\s]+)\]"
    r"(?:\s*--\s*(.*\S))?\s*$")

#: Meta-rule ids emitted by the suppression parser itself.
UNKNOWN_RULE = "REP001"
MISSING_JUSTIFICATION = "REP002"


@dataclass(frozen=True)
class Suppression:
    """One parsed allow comment."""

    line: int            # line the comment sits on (1-based)
    target_line: int     # line of code it covers
    rule_ids: Tuple[str, ...]
    justification: str   # empty string when missing

    @property
    def justified(self) -> bool:
        """Whether the mandatory justification text is present."""
        return bool(self.justification)


@dataclass(frozen=True)
class SuppressionProblem:
    """A defect in a suppression comment (reported as a finding)."""

    rule: str            # UNKNOWN_RULE or MISSING_JUSTIFICATION
    line: int
    message: str


def _iter_comments(source_lines: List[str]
                   ) -> Iterator[Tuple[int, int, str]]:
    """(line, column, text) of every comment token in the source."""
    source = "\n".join(source_lines) + "\n"
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type == tokenize.COMMENT:
                yield token.start[0], token.start[1], token.string
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # Files that fail to tokenize already produced a parse-error
        # finding; suppressions in them are moot.
        return


def parse_suppressions(source_lines: List[str]) -> List[Suppression]:
    """Extract all allow comments from a file's source lines."""
    suppressions = []
    for line, column, text in _iter_comments(source_lines):
        match = _ALLOW_RE.match(text)
        if match is None:
            continue
        rule_ids = tuple(part.strip() for part in match.group(1).split(",")
                         if part.strip())
        before = source_lines[line - 1][:column].strip()
        target = line if before else line + 1
        suppressions.append(Suppression(
            line=line, target_line=target, rule_ids=rule_ids,
            justification=(match.group(2) or "").strip()))
    return suppressions


def build_suppression_index(
        suppressions: List[Suppression],
        known_rule_ids) -> Tuple[Dict[Tuple[int, str], Suppression],
                                 List[SuppressionProblem]]:
    """Index justified suppressions by (line, rule) and collect defects.

    Only *justified* suppressions enter the index — an unjustified allow
    never silences a finding.
    """
    index: Dict[Tuple[int, str], Suppression] = {}
    problems: List[SuppressionProblem] = []
    known = set(known_rule_ids)
    for suppression in suppressions:
        for rule_id in suppression.rule_ids:
            if rule_id not in known:
                problems.append(SuppressionProblem(
                    rule=UNKNOWN_RULE, line=suppression.line,
                    message="suppression names unknown rule %r" % rule_id))
        if not suppression.justified:
            problems.append(SuppressionProblem(
                rule=MISSING_JUSTIFICATION, line=suppression.line,
                message="suppression is missing the mandatory "
                        "justification text (use "
                        "'# repro: allow[RULE] -- reason')"))
            continue
        for rule_id in suppression.rule_ids:
            index[(suppression.target_line, rule_id)] = suppression
    return index, problems
