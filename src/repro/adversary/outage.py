"""Scheduled service outages and graceful degradation.

The other half of the adversary engine: instead of a hostile wire, the
peer is simply *gone*. Outages live on the simulation clock as explicit
windows, so a scenario can say "the OCSP responder is down for the
second hour" and every actor observes exactly that.

Two degradation mechanisms are modeled:

* :class:`OutageRIChannel` raises
  :class:`~repro.drm.errors.ServiceUnavailableError` while the RI is
  inside a downtime window — the typed signal that lets the session
  layer's :class:`~repro.drm.session.CircuitBreaker` fast-fail instead
  of burning its retry budget against a dead front-end.
* :class:`CachingOCSPResponder` keeps the RI registering during *OCSP*
  downtime: the last good response is served from cache for as long as
  its own ``next_update`` window allows (the agent's freshness checks
  still bound the staleness), after which registration degrades to
  unavailable rather than presenting a stale assertion.
"""

import bisect
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from ..drm.errors import ServiceUnavailableError
from ..drm.ocsp import OCSPResponse
from ..drm.roap.wire import WireChannel
from ..obs.tracer import NULL_TRACER


@dataclass(frozen=True)
class OutageWindow:
    """One downtime interval ``[start, end)`` on the simulation clock."""

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError("an outage window must have positive length")

    def contains(self, now: int) -> bool:
        """Whether ``now`` falls inside this window."""
        return self.start <= now < self.end

    @property
    def seconds(self) -> int:
        """Window length in seconds."""
        return self.end - self.start


class OutageSchedule:
    """A set of non-overlapping downtime windows for one service."""

    def __init__(self, windows: Sequence[OutageWindow] = ()) -> None:
        ordered = sorted(windows, key=lambda w: w.start)
        for earlier, later in zip(ordered, ordered[1:]):
            if later.start < earlier.end:
                raise ValueError("outage windows must not overlap")
        self.windows: Tuple[OutageWindow, ...] = tuple(ordered)
        self._starts = [w.start for w in self.windows]

    @classmethod
    def periodic(cls, first_start: int, down_seconds: int,
                 up_seconds: int, count: int) -> "OutageSchedule":
        """``count`` equal windows separated by ``up_seconds`` of uptime."""
        if down_seconds <= 0 or up_seconds < 0 or count < 0:
            raise ValueError("periodic schedule parameters out of range")
        windows = []
        start = first_start
        for _ in range(count):
            windows.append(OutageWindow(start, start + down_seconds))
            start += down_seconds + up_seconds
        return cls(windows)

    def _window_at(self, now: int) -> Optional[OutageWindow]:
        index = bisect.bisect_right(self._starts, now) - 1
        if index >= 0 and self.windows[index].contains(now):
            return self.windows[index]
        return None

    def is_down(self, now: int) -> bool:
        """Whether the service is inside a downtime window at ``now``."""
        return self._window_at(now) is not None

    def seconds_until_restore(self, now: int) -> int:
        """Seconds until the current window ends (0 when the service
        is up)."""
        window = self._window_at(now)
        return 0 if window is None else window.end - now

    def total_downtime(self) -> int:
        """Sum of all window lengths in seconds."""
        return sum(w.seconds for w in self.windows)


class OutageRIChannel(WireChannel):
    """A wire channel whose Rights Issuer observes scheduled downtime.

    Requests raised during a downtime window never reach the RI; they
    fail with :class:`ServiceUnavailableError` *before* any server-side
    processing — the terminal has already spent its request-side crypto
    (signing), exactly as against a real dead front-end.
    """

    def __init__(self, rights_issuer, schedule: OutageSchedule, clock,
                 tracer=NULL_TRACER) -> None:
        super().__init__(rights_issuer)
        self.schedule = schedule
        self.clock = clock
        self.tracer = tracer
        self.rejected_requests = 0

    def _deliver(self, handler, request, request_blob):
        if self.schedule.is_down(self.clock.now):
            self.rejected_requests += 1
            restore = self.schedule.seconds_until_restore(self.clock.now)
            self.tracer.event("outage.ri-down", track="roap",
                              message=type(request).__name__,
                              seconds_until_restore=restore)
            raise ServiceUnavailableError(
                "RI unavailable (outage window, restore in %d s)"
                % restore)
        return super()._deliver(handler, request, request_blob)


class CachingOCSPResponder:
    """An OCSP responder front-end with downtime and a response cache.

    Preserves the :class:`~repro.drm.ocsp.OCSPResponder` surface the
    Rights Issuer consumes (``respond(serial, now)``, ``certificate``,
    ``name``), so it drops into an existing deployment unchanged. While
    the backing responder is up, every response is fetched fresh and
    cached per serial. During a downtime window the cache serves the
    last good response *only inside its own validity window*
    (``next_update``) — degraded freshness the agent's checks still
    accept — and raises :class:`ServiceUnavailableError` beyond it:
    graceful degradation never turns into presenting a provably stale
    assertion.
    """

    def __init__(self, responder, schedule: OutageSchedule,
                 tracer=NULL_TRACER) -> None:
        self._responder = responder
        self.schedule = schedule
        self.tracer = tracer
        self._cache: Dict[int, OCSPResponse] = {}
        self.fresh_responses = 0
        self.cache_hits = 0
        self.unavailable = 0

    @property
    def name(self) -> str:
        """The backing responder's name."""
        return self._responder.name

    @property
    def certificate(self):
        """The backing responder's certificate."""
        return self._responder.certificate

    def respond(self, serial: int, now: int) -> OCSPResponse:
        """A status response for ``serial``: fresh if up, cached if not."""
        if not self.schedule.is_down(now):
            response = self._responder.respond(serial, now)
            self._cache[serial] = response
            self.fresh_responses += 1
            return response
        cached = self._cache.get(serial)
        if cached is not None and now <= cached.next_update:
            self.cache_hits += 1
            self.tracer.event("outage.ocsp-cache-hit", track="roap",
                              serial=serial,
                              age_seconds=now - cached.produced_at)
            return cached
        self.unavailable += 1
        restore = self.schedule.seconds_until_restore(now)
        self.tracer.event("outage.ocsp-down", track="roap", serial=serial,
                          seconds_until_restore=restore)
        raise ServiceUnavailableError(
            "OCSP responder unavailable and no valid cached response "
            "for serial %d (restore in %d s)" % (serial, restore))
