"""The attack corpus: an active man-in-the-middle on the ROAP bearer.

:class:`AdversaryChannel` wraps a Rights Issuer exactly like
:class:`~repro.drm.roap.wire.WireChannel`, but a seeded attacker sits on
the downlink: every response can be captured, tampered, substituted or
replayed before the terminal sees it. The attacker owns the wire — and
nothing else: no RI private key, no device key, no trust anchor. Each
:class:`AttackKind` is one catalogued strategy from that position.

The corpus is the *offensive* half of the zero-acceptance invariant
(:mod:`repro.adversary.sweep` is the harness): for every attack the
terminal must reject the flow — by signature, certificate chain, OCSP
freshness, nonce echo, MAC or DRM-time policy — and install nothing.

Determinism contract: the attacker's randomness (garbage signatures,
swapped nonces, its own PKI) derives from one seed string through
:class:`~repro.crypto.rng.HmacDrbg`, and attacks mount at fixed protocol
steps — the same seed therefore produces byte-identical attacked runs.
"""

import dataclasses
import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..crypto.kem import KemCiphertext
from ..crypto.rng import HmacDrbg
from ..crypto.rsa import generate_keypair
from ..core.meter import PlainCrypto
from ..drm.certificates import CertificationAuthority
from ..drm.clock import DAY
from ..drm.ocsp import OCSPResponse
from ..drm.rel import play_count
from ..drm.roap.messages import NONCE_LENGTH
from ..drm.roap.wire import WireChannel, encode_message

#: Modulus size of the attacker's own PKI. Small on purpose: the
#: attacker's signatures must *fail* trust checks regardless of size,
#: and key generation cost is pure overhead for the harness.
ATTACKER_RSA_BITS = 512


class AttackKind(enum.Enum):
    """Every catalogued man-in-the-middle strategy."""

    #: Replace the response signature with attacker-chosen bytes.
    FORGE_SIGNATURE = "forge-signature"
    #: Amplify the rights inside a delivered RO (keep MAC/signature).
    TAMPER_RO_RIGHTS = "tamper-ro-rights"
    #: Corrupt the encapsulated key material (C2 of the KEM chain).
    TAMPER_CEK = "tamper-cek"
    #: Replay a previously captured response of the same type.
    REPLAY_RESPONSE = "replay-response"
    #: Replace the nonce echo with an attacker-chosen nonce.
    SWAP_NONCE = "swap-nonce"
    #: Substitute an OCSP response captured before a revocation.
    STALE_OCSP = "stale-ocsp"
    #: Substitute a future-dated OCSP response (pre-signed for later).
    FUTURE_OCSP = "future-ocsp"
    #: Downgrade the negotiated protocol version in RIHello.
    DOWNGRADE_VERSION = "downgrade-version"
    #: Deliver a response minted for a *different* device.
    WRONG_RECIPIENT = "wrong-recipient"
    #: Re-sign the response under the attacker's own CA and certificate.
    CERT_SUBSTITUTION = "cert-substitution"
    #: Rewrite ``ri_time`` to wind the terminal's DRM Time backwards.
    TIME_ROLLBACK = "time-rollback"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: The full corpus, in enum declaration order (the sweep order).
ALL_ATTACKS = tuple(AttackKind)


@dataclass(frozen=True)
class MountedAttack:
    """One attack the adversary actually mounted on one response."""

    sequence: int
    message: str
    kind: AttackKind
    detail: str = ""


@dataclass
class AttackLog:
    """Everything the adversary did to this channel, in order."""

    events: List[MountedAttack] = field(default_factory=list)

    def add(self, message: str, kind: AttackKind,
            detail: str = "") -> MountedAttack:
        """Record one mounted attack."""
        event = MountedAttack(sequence=len(self.events), message=message,
                              kind=kind, detail=detail)
        self.events.append(event)
        return event

    def __len__(self) -> int:
        return len(self.events)

    def count(self, kind: Optional[AttackKind] = None) -> int:
        """Number of mounted attacks, optionally of one kind."""
        if kind is None:
            return len(self.events)
        return sum(1 for event in self.events if event.kind is kind)


class AdversaryChannel(WireChannel):
    """A Rights Issuer seen through a hostile wire.

    While ``armed`` is False the channel behaves like a plain
    :class:`WireChannel` that additionally *captures* every downlink
    response (the attacker's recorder). Once armed with an
    :class:`AttackKind`, every subsequent response of the attack's
    target type is perturbed accordingly. Capture-then-arm is how
    replay, wrong-recipient and stale-OCSP substitutions obtain their
    material, exactly as a real recording attacker would.
    """

    def __init__(self, rights_issuer, seed: str = "adversary") -> None:
        super().__init__(rights_issuer)
        self.seed = seed
        self.armed: Optional[AttackKind] = None
        self.attacks = AttackLog()
        #: Response objects by message type name, in capture order.
        self.captured: Dict[str, List[object]] = {}
        #: Cross-channel capture store for WRONG_RECIPIENT: responses
        #: recorded from a *different* device's channel.
        self.foreign_captures: Dict[str, List[object]] = {}
        self._drbg = HmacDrbg(("%s/mitm" % seed).encode())
        self._pki: Optional[tuple] = None

    # -- attacker identity -------------------------------------------------
    def _attacker_pki(self):
        """The attacker's own CA and RI keypair (lazily generated)."""
        if self._pki is None:
            crypto = PlainCrypto(
                HmacDrbg(("%s/pki" % self.seed).encode()))
            ca_keys = generate_keypair(ATTACKER_RSA_BITS, crypto.rng)
            ca = CertificationAuthority("evil-root", ca_keys, crypto)
            ri_keys = generate_keypair(ATTACKER_RSA_BITS, crypto.rng)
            self._pki = (crypto, ca, ri_keys)
        return self._pki

    def _garbage(self, length: int) -> bytes:
        """Deterministic attacker-chosen bytes of ``length`` octets."""
        return self._drbg.random_bytes(length)

    # -- capture management ------------------------------------------------
    def arm(self, attack: AttackKind) -> None:
        """Start mounting ``attack`` on every matching response."""
        self.armed = attack

    def disarm(self) -> None:
        """Stop attacking (captures continue)."""
        self.armed = None

    def record_foreign(self, channel: "AdversaryChannel") -> None:
        """Adopt another channel's captures (wrong-recipient material)."""
        for name, responses in channel.captured.items():
            self.foreign_captures.setdefault(name, []).extend(responses)

    def _capture(self, response) -> None:
        self.captured.setdefault(type(response).__name__,
                                 []).append(response)

    # -- transport ---------------------------------------------------------
    def _deliver(self, handler, request, request_blob):
        from ..drm.roap.wire import decode_message
        response = handler(decode_message(request_blob))
        self._capture(response)
        if self.armed is not None:
            response = self._mount(self.armed, response)
        response_blob = encode_message(response)
        self.log.add("ri->device", response, response_blob)
        return response_blob

    # -- the corpus --------------------------------------------------------
    def _mount(self, kind: AttackKind, response):
        """Apply one attack to one response object (or pass it through)."""
        name = type(response).__name__
        mutate = _MUTATIONS.get((kind, name))
        if mutate is None:
            return response
        mutated = mutate(self, response)
        if mutated is response:
            return response
        self.attacks.add(name, kind)
        return mutated

    # Individual strategies. Each takes (channel, response) and returns
    # the perturbed response object; returning the input unchanged means
    # the attack had nothing to work with at this step (e.g. no prior
    # capture to replay) and nothing is logged.

    def _forge_signature(self, response):
        return dataclasses.replace(
            response, signature=self._garbage(len(response.signature)))

    def _tamper_ro_rights(self, response):
        amplified = dataclasses.replace(
            response.protected_ro.ro, rights=play_count(10 ** 9))
        protected = dataclasses.replace(response.protected_ro,
                                        ro=amplified)
        return dataclasses.replace(response, protected_ro=protected)

    def _tamper_cek(self, response):
        protected = response.protected_ro
        if protected.kem_ciphertext is not None:
            c2 = bytearray(protected.kem_ciphertext.c2)
            c2[0] ^= 0x01
            tampered = dataclasses.replace(
                protected, kem_ciphertext=KemCiphertext(
                    c1=protected.kem_ciphertext.c1, c2=bytes(c2)))
        else:
            wrapped = bytearray(protected.domain_wrapped_keys)
            wrapped[0] ^= 0x01
            tampered = dataclasses.replace(
                protected, domain_wrapped_keys=bytes(wrapped))
        return dataclasses.replace(response, protected_ro=tampered)

    def _replay_response(self, response):
        history = self.captured.get(type(response).__name__, [])
        if len(history) < 2:  # only the fresh response itself
            return response
        return history[0]

    def _swap_nonce(self, response):
        return dataclasses.replace(
            response, device_nonce=self._garbage(NONCE_LENGTH))

    def _stale_ocsp(self, response):
        history = self.captured.get("RegistrationResponse", [])
        if len(history) < 2:
            return response
        return dataclasses.replace(
            response, ocsp_response=history[0].ocsp_response)

    def _future_ocsp(self, response):
        crypto, _, ri_keys = self._attacker_pki()
        genuine = response.ocsp_response
        unsigned = OCSPResponse(
            serial=genuine.serial, status=genuine.status,
            produced_at=genuine.produced_at + 30 * DAY,
            next_update=genuine.next_update + 60 * DAY,
            responder=genuine.responder, signature=b"")
        forged = dataclasses.replace(
            unsigned,
            signature=crypto.pss_sign(ri_keys, unsigned.tbs_bytes()))
        return dataclasses.replace(response, ocsp_response=forged)

    def _downgrade_version(self, response):
        return dataclasses.replace(response, version="1.0")

    def _wrong_recipient(self, response):
        foreign = self.foreign_captures.get(type(response).__name__, [])
        if not foreign:
            return response
        return foreign[0]

    def _cert_substitution(self, response):
        crypto, ca, ri_keys = self._attacker_pki()
        certificate = ca.issue(response.ri_certificate.subject,
                               ri_keys.public_key,
                               response.ri_certificate.not_before)
        unsigned = dataclasses.replace(response,
                                       ri_certificate=certificate,
                                       signature=b"")
        return dataclasses.replace(
            unsigned,
            signature=crypto.pss_sign(ri_keys, unsigned.tbs_bytes()))

    def _time_rollback(self, response):
        return dataclasses.replace(
            response, ri_time=max(0, response.ri_time - 30 * DAY))


#: (attack kind, message type) -> mutation. An attack only fires on the
#: message type it targets; other responses pass through untouched, so
#: one armed channel perturbs exactly one protocol step per flow.
_MUTATIONS = {
    (AttackKind.FORGE_SIGNATURE, "RegistrationResponse"):
        AdversaryChannel._forge_signature,
    (AttackKind.FORGE_SIGNATURE, "ROResponse"):
        AdversaryChannel._forge_signature,
    (AttackKind.FORGE_SIGNATURE, "JoinDomainResponse"):
        AdversaryChannel._forge_signature,
    (AttackKind.TAMPER_RO_RIGHTS, "ROResponse"):
        AdversaryChannel._tamper_ro_rights,
    (AttackKind.TAMPER_CEK, "ROResponse"):
        AdversaryChannel._tamper_cek,
    (AttackKind.REPLAY_RESPONSE, "RegistrationResponse"):
        AdversaryChannel._replay_response,
    (AttackKind.REPLAY_RESPONSE, "ROResponse"):
        AdversaryChannel._replay_response,
    (AttackKind.SWAP_NONCE, "RegistrationResponse"):
        AdversaryChannel._swap_nonce,
    (AttackKind.SWAP_NONCE, "ROResponse"):
        AdversaryChannel._swap_nonce,
    (AttackKind.STALE_OCSP, "RegistrationResponse"):
        AdversaryChannel._stale_ocsp,
    (AttackKind.FUTURE_OCSP, "RegistrationResponse"):
        AdversaryChannel._future_ocsp,
    (AttackKind.DOWNGRADE_VERSION, "RIHello"):
        AdversaryChannel._downgrade_version,
    (AttackKind.WRONG_RECIPIENT, "RegistrationResponse"):
        AdversaryChannel._wrong_recipient,
    (AttackKind.WRONG_RECIPIENT, "ROResponse"):
        AdversaryChannel._wrong_recipient,
    (AttackKind.CERT_SUBSTITUTION, "RegistrationResponse"):
        AdversaryChannel._cert_substitution,
    (AttackKind.TIME_ROLLBACK, "RegistrationResponse"):
        AdversaryChannel._time_rollback,
}
