"""The zero-acceptance sweep: every attack, every flow, no acceptance.

For each :class:`~repro.adversary.attacks.AttackKind` the sweep builds a
fresh deterministic world, mounts the attack on its natural protocol
step, drives the flow and records which defense rejected it. The
invariant under test:

    **No attack ever yields an installed Rights Object, a decrypted
    content payload, or a completed registration against tampered
    material.**

An attack that *fails to mount* (scenario bug: zero perturbed messages)
is treated as a sweep failure too — silently green is the one outcome
this harness must never produce.

Each attacked flow runs against a metered terminal, so the sweep also
prices what the attack *cost the defender* before rejection, per
architecture profile — the numbers :mod:`repro.analysis.adversary`
reports.
"""

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.architecture import PAPER_PROFILES
from ..core.model import PerformanceModel
from ..crypto.errors import CryptoError
from ..drm.clock import DAY
from ..drm.errors import DRMError
from ..drm.identifiers import content_id, rights_object_id
from ..drm.rel import play_count
from ..usecases.world import RSA_BITS, DRMWorld
from .attacks import ALL_ATTACKS, AdversaryChannel, AttackKind

#: Attacks mounted on the RO-acquisition flow (after a clean
#: registration); everything else targets the registration flow.
ACQUISITION_ATTACKS = frozenset({
    AttackKind.TAMPER_RO_RIGHTS,
    AttackKind.TAMPER_CEK,
})

#: Attacks that need a prior clean capture before they can fire.
CAPTURE_ATTACKS = frozenset({
    AttackKind.REPLAY_RESPONSE,
    AttackKind.STALE_OCSP,
    AttackKind.WRONG_RECIPIENT,
})

#: Attacks that target an already-synced device: the rollback bound
#: protects previously *trusted* DRM Time, so the device must have one
#: clean registration behind it (a fresh factory clock is untrusted and
#: its first correction is legitimately unbounded).
SYNCED_ATTACKS = frozenset({
    AttackKind.TIME_ROLLBACK,
})


@dataclass(frozen=True)
class AttackOutcome:
    """What one mounted attack achieved (nothing, if all is well)."""

    attack: AttackKind
    flow: str               # "register" or "acquire"
    mounted: int            # wire messages actually perturbed
    rejected: bool
    defense: str            # exception type that stopped the flow
    detail: str             # its message
    defender_cycles: Dict[str, int]  # architecture -> cycles spent

    @property
    def accepted(self) -> bool:
        """True when the attacked flow completed — the invariant broke."""
        return not self.rejected


@dataclass
class SweepResult:
    """All outcomes of one full attack-corpus sweep."""

    seed: str
    rsa_bits: int
    outcomes: Tuple[AttackOutcome, ...]

    @property
    def accepted(self) -> List[AttackOutcome]:
        """Outcomes that violated the zero-acceptance invariant."""
        return [o for o in self.outcomes if o.accepted]

    @property
    def unmounted(self) -> List[AttackOutcome]:
        """Outcomes whose attack never actually fired (harness bug)."""
        return [o for o in self.outcomes if o.mounted == 0]

    def assert_zero_acceptance(self) -> None:
        """Raise ``AssertionError`` unless every attack mounted and was
        rejected."""
        problems = []
        for outcome in self.accepted:
            problems.append("%s was ACCEPTED on %s"
                            % (outcome.attack.value, outcome.flow))
        for outcome in self.unmounted:
            problems.append("%s never mounted on %s"
                            % (outcome.attack.value, outcome.flow))
        if problems:
            raise AssertionError(
                "zero-acceptance invariant violated: "
                + "; ".join(problems))


def _provisioned_world(seed: str, rsa_bits: int
                       ) -> Tuple[DRMWorld, str, str, object]:
    """A metered world with one published content and one offer."""
    world = DRMWorld.create(seed, metered=True, rsa_bits=rsa_bits)
    cid = content_id("attacked-track")
    dcf = world.ci.publish(
        content_id=cid, content_type="audio/mp3",
        clear_content=b"\x5a" * 256,
        rights_issuer_url="http://ri.example/shop")
    ro_id = rights_object_id(cid + "-license")
    world.ri.add_offer(ro_id, world.ci.negotiate_license(cid),
                       play_count(4))
    return world, cid, ro_id, dcf


def _priced(world: DRMWorld) -> Dict[str, int]:
    """Cycles the terminal spent since the last reset, per architecture."""
    trace = world.agent_crypto.reset_trace()
    model = PerformanceModel()
    return {profile.name: model.evaluate(trace, profile).total_cycles
            for profile in PAPER_PROFILES}


def attack_registration(world: DRMWorld, channel: AdversaryChannel,
                        attack: AttackKind,
                        bystander_seed: str = "bystander"
                        ) -> Optional[Exception]:
    """Mount ``attack`` on one registration flow; return the rejection.

    Handles the attack's preconditions (warm-up captures, clock
    advances, a bystander device for wrong-recipient material), arms the
    channel and drives one registration. Returns the exception that
    rejected the flow, or ``None`` if the registration *completed* —
    which the caller must treat as an invariant violation.
    """
    if attack in SYNCED_ATTACKS:
        # Establish trusted DRM Time first — the realistic rollback
        # target is a device whose clock the RI already corrected.
        world.agent.register(channel)
        world.clock.advance(DAY)
    if attack in CAPTURE_ATTACKS:
        # The recorder phase: a clean registration the attacker taps.
        world.agent.register(channel)
        if attack is AttackKind.STALE_OCSP:
            # Let the captured OCSP response expire (7-day validity)
            # before presenting it again.
            world.clock.advance(8 * DAY)
        else:
            world.clock.advance(DAY)
    if attack is AttackKind.WRONG_RECIPIENT:
        bystander = world.add_device(bystander_seed)
        tap = AdversaryChannel(world.ri,
                               seed=channel.seed + "/bystander")
        bystander.register(tap)
        channel.record_foreign(tap)
    # Only the attacked flow itself is priced, not the warm-up.
    world.agent_crypto.reset_trace()
    channel.arm(attack)
    try:
        world.agent.register(channel)
    except (DRMError, CryptoError) as exc:
        return exc
    finally:
        channel.disarm()
    return None


def attack_acquisition(world: DRMWorld, channel: AdversaryChannel,
                       attack: AttackKind, ro_id: str, cid: str,
                       dcf) -> Optional[Exception]:
    """Mount ``attack`` on the RO-acquisition/installation pipeline.

    Registers cleanly first (the attack targets the ROResponse), then
    drives acquire → install → consume under the armed channel. Returns
    the rejecting exception, or ``None`` if content was decrypted.
    """
    world.agent.register(channel)
    # Only the attacked pipeline is priced, not the clean registration.
    world.agent_crypto.reset_trace()
    channel.arm(attack)
    try:
        protected_ro = world.agent.acquire(channel, ro_id)
        world.agent.install(protected_ro, dcf)
        world.agent.consume(cid)
    except (DRMError, CryptoError) as exc:
        return exc
    finally:
        channel.disarm()
    return None


def run_attack_sweep(seed: str = "adversary-sweep",
                     rsa_bits: int = RSA_BITS,
                     attacks: Sequence[AttackKind] = ALL_ATTACKS
                     ) -> SweepResult:
    """Run the full corpus, one fresh deterministic world per attack."""
    outcomes: List[AttackOutcome] = []
    for attack in attacks:
        world, cid, ro_id, dcf = _provisioned_world(
            "%s/%s" % (seed, attack.value), rsa_bits)
        channel = AdversaryChannel(
            world.ri, seed="%s/%s" % (seed, attack.value))
        if attack in ACQUISITION_ATTACKS:
            flow = "acquire"
            rejection = attack_acquisition(world, channel, attack,
                                           ro_id, cid, dcf)
        else:
            flow = "register"
            rejection = attack_registration(world, channel, attack)
        outcomes.append(AttackOutcome(
            attack=attack,
            flow=flow,
            mounted=channel.attacks.count(attack),
            rejected=rejection is not None,
            defense=type(rejection).__name__ if rejection else "",
            detail=str(rejection) if rejection else "",
            defender_cycles=_priced(world),
        ))
    return SweepResult(seed=seed, rsa_bits=rsa_bits,
                       outcomes=tuple(outcomes))
