"""``repro.adversary`` — deterministic adversary-and-outage engine.

PR 1's fault channel models *random* bearer damage; this package models
the two failure sources the paper's security architecture (§2.4.1) is
actually built against:

* **Active attackers** (:mod:`repro.adversary.attacks`) — a
  man-in-the-middle channel wrapper mounting a catalogued attack corpus
  (forged signatures, tampered RO/CEK payloads, replays, nonce swaps,
  stale/future OCSP, downgrade, wrong-recipient and certificate
  substitutions, DRM-time rollback), plus the sweep harness asserting
  the **zero-acceptance invariant**: no attack ever yields an installed
  Rights Object or decrypted content
  (:mod:`repro.adversary.sweep`).
* **Service outages** (:mod:`repro.adversary.outage`) — scheduled
  RI/OCSP downtime windows on the simulation clock, an OCSP response
  cache that degrades gracefully inside the response validity window,
  and — together with :class:`repro.drm.session.CircuitBreaker` —
  fast-fail behavior that stops a terminal from burning its crypto
  budget against a dead (or hostile) peer.

Everything is seeded and deterministic: the same seed mounts the same
attacks at the same protocol steps, so every red-team run is exactly as
reproducible as a clean one. :mod:`repro.analysis.adversary` prices the
engine's outcomes under the paper's three architectures.
"""

from .attacks import (ALL_ATTACKS, AdversaryChannel, AttackKind,
                      AttackLog, MountedAttack)
from .outage import (CachingOCSPResponder, OutageRIChannel,
                     OutageSchedule, OutageWindow)
from .sweep import (AttackOutcome, SweepResult, attack_registration,
                    run_attack_sweep)

__all__ = [
    "ALL_ATTACKS", "AdversaryChannel", "AttackKind", "AttackLog",
    "MountedAttack", "CachingOCSPResponder", "OutageRIChannel",
    "OutageSchedule", "OutageWindow", "AttackOutcome", "SweepResult",
    "attack_registration", "run_attack_sweep",
]
