"""repro — reproduction of "Performance Considerations for an Embedded
Implementation of OMA DRM 2" (Thull & Sannino, DATE 2005).

The package implements, from scratch:

* :mod:`repro.crypto` — the mandated cryptographic algorithms (AES,
  SHA-1, HMAC-SHA1, AES Key Wrap, KDF2, RSA with PSS, the Figure 3 KEM),
* :mod:`repro.drm` — the OMA DRM 2 system model (CA/OCSP PKI, DCF,
  Rights Objects, REL, ROAP, DRM Agent, Rights Issuer, Content Issuer,
  domains),
* :mod:`repro.core` — the paper's contribution: the Table 1 cycle-cost
  model, SW/SW-HW/HW architecture profiles, operation metering and trace
  pricing, plus energy models,
* :mod:`repro.usecases` — the Music Player and Ringtone evaluation
  workloads with functional and modeled execution paths,
* :mod:`repro.analysis` — regeneration of every table and figure.

Quickstart::

    from repro.analysis import figure6, figure7
    print(figure6.generate().render())
    print(figure7.generate().render())
"""

__version__ = "1.0.0"

from . import analysis, core, crypto, drm, usecases

__all__ = ["analysis", "core", "crypto", "drm", "usecases",
           "__version__"]
