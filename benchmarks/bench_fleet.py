"""Fleet engine: serial-vs-sharded equivalence and the scaling curve.

Two properties are exercised:

* **Equivalence** — the same :class:`~repro.usecases.fleet.FleetConfig`
  aggregated with 1, 2 and 4 workers produces bit-identical
  accumulators (the sharding determinism contract).
* **Scaling** — population throughput (devices simulated per second)
  stays near-linear in population size, because per-device work is
  O(1) integer arithmetic over pre-priced templates.

Run directly (``python benchmarks/bench_fleet.py``) it prints the
scaling curve and checks equivalence at 10^4 devices; the 10^6-device
point only runs under ``pytest -m slow`` or ``--big``.
"""

import sys
import time

import pytest

from repro.usecases.fleet import (FleetConfig, build_cost_templates,
                                  run_fleet)

BITS = 512
SEED = "bench-fleet"

#: Population sizes for the default scaling curve.
POPULATIONS = (1_000, 10_000, 100_000)

#: The paper-scale north-star population (slow: ~minutes of CPU).
MILLION = 1_000_000


def _config(devices: int) -> FleetConfig:
    return FleetConfig(devices=devices, seed=SEED, rsa_bits=BITS,
                       shard_size=25_000)


@pytest.fixture(scope="module")
def templates():
    return build_cost_templates(_config(POPULATIONS[0]))


def bench_fleet_10k(benchmark, templates):
    benchmark(run_fleet, _config(10_000), workers=1,
              templates=templates)


def test_serial_vs_sharded_equivalence(templates):
    config = _config(10_000)
    serial = run_fleet(config, workers=1, templates=templates)
    for workers in (2, 4):
        sharded = run_fleet(config, workers=workers,
                            templates=templates)
        assert sharded.accumulator == serial.accumulator


@pytest.mark.slow
def test_million_device_fleet(templates):
    result = run_fleet(_config(MILLION), workers=4,
                       templates=templates)
    assert result.accumulator.devices == MILLION


def main(argv) -> int:
    big = "--big" in argv
    populations = POPULATIONS + ((MILLION,) if big else ())
    templates = build_cost_templates(_config(POPULATIONS[0]))

    print("population   workers  wall [s]   devices/s")
    for devices in populations:
        config = _config(devices)
        start = time.time()
        result = run_fleet(config, workers=1, templates=templates)
        elapsed = time.time() - start
        print("%-12d %-8d %-10.2f %.0f"
              % (devices, 1, elapsed, devices / elapsed))
        assert result.accumulator.devices == devices

    config = _config(10_000)
    serial = run_fleet(config, workers=1, templates=templates)
    failures = []
    for workers in (2, 4):
        sharded = run_fleet(config, workers=workers,
                            templates=templates)
        if sharded.accumulator != serial.accumulator:
            failures.append("workers=%d diverged from serial" % workers)
    for failure in failures:
        print("FAIL: " + failure)
    print("serial/sharded equivalence %s"
          % ("FAILED" if failures else "PASSED"))
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
