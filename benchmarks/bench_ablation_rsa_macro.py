"""Ablation: how fast must an RSA macro be to matter?

The paper notes PKI acceleration buys ~600 ms once and questions the
macro's gate cost. This sweep varies the hardware RSA cycle counts from
the paper's Montgomery-multiplier figures down to 1/8 and up to 8x,
showing when the Ringtone HW bar stops being RSA-bound.
"""

from repro.analysis.common import ringtone_trace
from repro.analysis.formatting import format_ms, format_table
from repro.core.architecture import HW_PROFILE
from repro.core.costs import (Implementation, LinearCost, PAPER_TABLE1)
from repro.core.model import PerformanceModel
from repro.core.trace import Algorithm

FACTORS = (0.125, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0)


def _total_ms_at(trace, factor):
    table = PAPER_TABLE1.override(
        Algorithm.RSA_PRIVATE, Implementation.HARDWARE,
        LinearCost(0, int(260_000 * factor), block_bits=1024),
    ).override(
        Algorithm.RSA_PUBLIC, Implementation.HARDWARE,
        LinearCost(0, int(10_000 * factor), block_bits=1024),
    )
    return PerformanceModel(table).evaluate(trace, HW_PROFILE).total_ms


def bench_ablation_rsa_macro(benchmark, print_once):
    trace = ringtone_trace()

    def sweep():
        return [(factor, _total_ms_at(trace, factor))
                for factor in FACTORS]

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    totals = dict(results)
    ordered = [ms for _, ms in results]
    assert ordered == sorted(ordered)  # slower macro -> longer total
    # Saturation: even an 8x faster RSA macro cuts the Ringtone HW total
    # by less than a third — the fixed AES/SHA-1 access work dominates,
    # the gate-cost argument in its sharpest form.
    assert totals[0.125] > 0.65 * totals[1.0]
    rows = [("%.3fx" % factor, format_ms(ms))
            for factor, ms in results]
    print_once("abl-rsa-macro", format_table(
        ("RSA macro cycles vs paper", "Ringtone HW total [ms]"), rows,
        title="Ablation: RSA macro speed sweep (Ringtone, full HW)"))
