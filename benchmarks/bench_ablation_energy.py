"""Ablation ``abl-energy``: proportional vs per-unit energy models.

Checks the paper's future-work observation: the SW-to-HW gap is wider for
energy than for time once macros get their own power figures.
"""

from repro.analysis import ablations


def bench_ablation_energy(benchmark, print_once):
    result = benchmark.pedantic(ablations.energy_comparison, rounds=1, iterations=1)
    print_once("abl-energy", result.render())
    ratios = ablations.energy_gap_ratios()
    assert ratios["energy_ratio"] > ratios["time_ratio"]
    print_once("abl-energy-ratios",
                "Music Player SW:HW gap - time %.0fx, energy %.0fx"
                % (ratios["time_ratio"], ratios["energy_ratio"]))
