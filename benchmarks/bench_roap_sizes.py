"""Experiment ``roap-sizes``: message sizes over the byte pipe.

Regenerates the "ROAP message file sizes" artifact the paper's Java model
produced, with the canonical binary encoding this reproduction uses.
"""

from repro.analysis import messages


def bench_roap_sizes(benchmark, print_once):
    result = benchmark.pedantic(messages.generate, rounds=1,
                                iterations=1)
    totals = result.by_message()
    # Certificate/OCSP-bearing messages are the big ones.
    assert totals["RegistrationResponse"][1] > totals["RORequest"][1]
    assert 2000 < result.log.total_octets() < 20_000
    print_once("roap-sizes", result.render())
