"""Retry-storm engine throughput and the overload smoke gate.

Two storm runs at the pinned benchmark seed, both on the software RI:

* **unmitigated** — no admission control, naive fixed-delay retries,
  no deadline propagation: the metastable collapse;
* **mitigated** — token-bucket admission, capped exponential backoff
  with jitter, in-queue deadlines: the escape.

Run directly (``python benchmarks/bench_overload.py``) it prints the
throughput/goodput table, re-runs each storm to prove bit-identical
digests (the determinism contract under timing pressure), enforces the
overload smoke gate — goodput with mitigation must not be *worse* than
without, and the unmitigated collapse must outlive the recovery window
while the mitigated cell recovers inside it — and emits
``BENCH_overload.json`` in the shared bench-report schema
(``benchmarks/harness.py``): event counts, goodput ratios and collapse
durations are gated (deterministic per seed), wall-clock throughput is
informational. ``--out PATH`` redirects the artifact.
"""

import sys
import time

import harness

from repro.sim.overload import StormSpec, run_storm

SEED = "bench-overload"

SPECS = (
    ("unmitigated", StormSpec(seed=SEED)),
    ("mitigated", StormSpec(seed=SEED, admission="token-bucket",
                            retry="backoff-jitter", deadlines=True)),
)

#: The smoke-gate recovery window: five spike durations, the same bar
#: the analysis contract holds.
WINDOW = 5 * SPECS[0][1].spike_duration


def _storm(spec):
    result = run_storm(spec)
    return result.events, result


def bench_overload_unmitigated(benchmark):
    benchmark(lambda: _storm(SPECS[0][1]))


def bench_overload_mitigated(benchmark):
    benchmark(lambda: _storm(SPECS[1][1]))


def test_storms_replay_bit_identically():
    for _name, spec in SPECS:
        assert run_storm(spec).digest() == run_storm(spec).digest()


def test_smoke_gate_mitigation_beats_collapse():
    unmitigated = run_storm(SPECS[0][1])
    mitigated = run_storm(SPECS[1][1])
    assert mitigated.goodput_ratio >= unmitigated.goodput_ratio
    assert unmitigated.collapse_duration >= WINDOW
    assert mitigated.recovered_within(WINDOW)


def measure(spec):
    start = time.perf_counter()
    events, result = _storm(spec)
    wall = time.perf_counter() - start
    return {"events": events, "wall_seconds": wall,
            "events_per_second": events / wall,
            "goodput_ratio": result.goodput_ratio,
            "collapse_service_units": result.collapse_duration,
            "recovery_service_units": result.recovery_time,
            "wasted_share": result.wasted_share,
            "digest": result.digest()}, result


def main(argv) -> int:
    out = "BENCH_overload.json"
    if "--out" in argv:
        out = argv[argv.index("--out") + 1]

    metrics = []
    failures = []
    results = {}
    print("storm         wall [s]   events     events/s   goodput  "
          "collapse  recovery")
    for name, spec in SPECS:
        timing, result = measure(spec)
        replay_timing, replay = measure(spec)
        if replay.digest() != timing["digest"]:
            failures.append("%s diverged between runs" % name)
        best = min(timing, replay_timing,
                   key=lambda t: t["wall_seconds"])
        results[name] = result
        # Everything on the virtual timebase is bit-exact per seed:
        # gate it with a zero band. Wall-clock stays informational.
        metrics.extend([
            harness.Metric("%s.events" % name, best["events"],
                           "events", direction="higher",
                           tolerance_pct=0.0),
            harness.Metric("%s.goodput_ratio" % name,
                           result.goodput_ratio, "ratio",
                           direction="higher", tolerance_pct=0.0),
            harness.Metric("%s.collapse_service_units" % name,
                           result.collapse_duration, "service units",
                           direction="lower", tolerance_pct=0.0),
            harness.Metric("%s.wasted_share" % name,
                           result.wasted_share, "ratio",
                           direction="lower", tolerance_pct=0.0),
            harness.Metric("%s.events_per_second" % name,
                           best["events_per_second"], "events/s",
                           direction="higher"),
            harness.Metric("%s.wall_seconds" % name,
                           best["wall_seconds"], "s",
                           direction="lower"),
        ])
        print("%-13s %-10.2f %-10d %-10.0f %-8.2f %-9d %s"
              % (name, best["wall_seconds"], best["events"],
                 best["events_per_second"], result.goodput_ratio,
                 result.collapse_duration,
                 "never" if result.recovery_time is None
                 else result.recovery_time))

    verdicts = {
        "replay-determinism": not any(
            "diverged" in failure for failure in failures),
        "mitigated-goodput-not-worse":
            results["mitigated"].goodput_ratio
            >= results["unmitigated"].goodput_ratio,
        "unmitigated-metastable":
            results["unmitigated"].collapse_duration >= WINDOW,
        "mitigated-recovers-in-window":
            results["mitigated"].recovered_within(WINDOW),
    }
    if not verdicts["mitigated-goodput-not-worse"]:
        failures.append("mitigated goodput below unmitigated")
    if not verdicts["unmitigated-metastable"]:
        failures.append("unmitigated storm was not metastable")
    if not verdicts["mitigated-recovers-in-window"]:
        failures.append("mitigated storm failed to recover in the "
                        "window")

    report = harness.BenchReport(bench="overload", seed=SEED,
                                 metrics=tuple(metrics),
                                 verdicts=verdicts)
    report.write(out)
    print("wrote %s" % out)

    for failure in failures:
        print("FAIL: " + failure)
    print("overload smoke gate %s"
          % ("FAILED" if failures else "PASSED"))
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
