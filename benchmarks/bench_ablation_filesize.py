"""Ablation ``abl-filesize``: macro-set value as a function of DCF size."""

from repro.analysis import ablations


def bench_ablation_filesize(benchmark, print_once):
    result = benchmark.pedantic(ablations.filesize_crossover, rounds=1, iterations=1)
    winners = [row[-1] for row in result.rows]
    assert winners[0] == "PKI"
    assert winners[-1] == "AES/SHA-1"
    print_once("abl-filesize", result.render())
