"""Experiment ``table1``: regenerate and verify the Table 1 cost table."""

from repro.analysis import table1


def bench_table1(benchmark, print_once):
    result = benchmark(table1.generate)
    assert result.matches_paper
    print_once("table1", result.render())
