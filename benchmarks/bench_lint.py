"""Analyzer cost: end-to-end lint wall-clock over ``src/``.

The lint gate runs on every CI build, so its cost is a tax on every
change; this benchmark tracks it across PRs the same way
``BENCH_kernel.json`` tracks scheduler throughput. Three measurements:

* **sequential** — the full pipeline (parse, call graph, taint
  fixpoint, rules) single-process;
* **parallel** — the same with ``jobs=2`` (the CI setting), whose
  output must stay bit-identical;
* **graph+fixpoint share** — the interprocedural build alone, so a
  regression can be attributed to the engine vs the rules.

Run directly (``python benchmarks/bench_lint.py``) it prints the
table, proves sequential/parallel equality, and emits
``BENCH_lint.json`` in the shared bench-report schema
(``benchmarks/harness.py``): everything here is wall-clock, so every
metric is informational and the sequential/parallel equality proof is
the only verdict. ``--out PATH`` redirects the artifact.
"""

import ast
import json
import pathlib
import sys
import time

import harness

from repro.lint import LintEngine, render_json
from repro.lint.callgraph import build_call_graph
from repro.lint.dataflow import DataflowAnalysis
from repro.lint.engine import collect_files, module_name_for
from repro.lint.graph import summarize_module

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
TARGET = str(REPO_ROOT / "src")


def _lint(jobs):
    engine = LintEngine()
    start = time.perf_counter()
    result = engine.run([TARGET], jobs=jobs)
    wall = time.perf_counter() - start
    return wall, result


def _engine_only():
    files = collect_files([TARGET])
    modules = []
    for path in files:
        name, is_package = module_name_for(path)
        tree = ast.parse(pathlib.Path(path).read_text(encoding="utf-8"),
                         filename=path)
        modules.append((name, tree,
                        summarize_module(name, tree, is_package)))
    start = time.perf_counter()
    graph = build_call_graph(modules)
    DataflowAnalysis(graph, {n: (t, s) for n, t, s in modules})
    return time.perf_counter() - start, len(files)


def test_parallel_lint_matches_sequential():
    _, sequential = _lint(jobs=1)
    _, parallel = _lint(jobs=2)
    assert json.dumps(render_json(sequential), sort_keys=True) \
        == json.dumps(render_json(parallel), sort_keys=True)


def main(argv) -> int:
    out = "BENCH_lint.json"
    if "--out" in argv:
        out = argv[argv.index("--out") + 1]

    seq_wall, seq_result = _lint(jobs=1)
    par_wall, par_result = _lint(jobs=2)
    engine_wall, files = _engine_only()

    identical = (json.dumps(render_json(seq_result), sort_keys=True)
                 == json.dumps(render_json(par_result),
                               sort_keys=True))

    report = harness.BenchReport(
        bench="lint", seed="-",
        metrics=(
            harness.Metric("files", files, "files",
                           direction="higher"),
            harness.Metric("sequential.wall_seconds", seq_wall, "s",
                           direction="lower"),
            harness.Metric("sequential.files_per_second",
                           files / seq_wall, "files/s",
                           direction="higher"),
            harness.Metric("parallel_jobs2.wall_seconds", par_wall,
                           "s", direction="lower"),
            harness.Metric("parallel_jobs2.files_per_second",
                           files / par_wall, "files/s",
                           direction="higher"),
            harness.Metric("callgraph_and_fixpoint.wall_seconds",
                           engine_wall, "s", direction="lower"),
        ),
        verdicts={"sequential-parallel-bit-identical": identical})
    print("mode          files  wall [s]  files/s")
    print("sequential    %-6d %-9.2f %.0f"
          % (files, seq_wall, files / seq_wall))
    print("parallel (2)  %-6d %-9.2f %.0f"
          % (files, par_wall, files / par_wall))
    print("graph+fixpoint share: %.2fs" % engine_wall)
    report.write(out)
    print("wrote %s" % out)
    print("sequential/parallel equality %s"
          % ("PASSED" if identical else "FAILED"))
    return 0 if identical else 1


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
