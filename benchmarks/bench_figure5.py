"""Experiment ``fig5``: relative algorithm shares for both use cases."""

from repro.analysis import figure5


def bench_figure5(benchmark, print_once):
    result = benchmark(figure5.generate)
    # The paper's qualitative reading must hold on every run.
    assert result.shares["Ringtone"]["PKI Private Key Operation"] > 0.5
    assert result.shares["Music Player"]["AES Decryption"] > 0.5
    print_once("fig5", result.render())
