"""Ablation ``abl-domain``: Domain RO overhead versus Device RO."""

from repro.analysis import ablations


def bench_ablation_domain(benchmark, print_once):
    result = benchmark.pedantic(ablations.domain_overhead, rounds=1, iterations=1)
    overheads = [float(row[3].rstrip("%")) for row in result.rows]
    assert all(o >= 0.0 for o in overheads)
    print_once("abl-domain", result.render())
