"""Ablation ``abl-kdev``: the section 2.4.3 K_DEV re-wrap optimization."""

from repro.analysis import ablations


def bench_ablation_kdev(benchmark, print_once):
    result = benchmark.pedantic(ablations.kdev_ablation, rounds=1, iterations=1)
    slowdowns = [float(row[4].rstrip("x")) for row in result.rows]
    assert all(s > 1.0 for s in slowdowns)
    print_once("abl-kdev", result.render())
