"""Retry-overhead pricing under a lossy bearer.

Two things are measured here:

* the cost of the *analysis* — sweeping the expected retry overhead
  across loss rates and architectures once the clean attempt is traced
  (the part a design-space exploration runs in a loop), and
* the cost of the *simulation* — driving a registration through a
  seeded :class:`~repro.drm.roap.faults.FaultyChannel` with the session
  layer retrying (512-bit keys to keep the host cost in milliseconds).

Run directly (``python benchmarks/bench_fault_overhead.py``) it prints
the overhead table and checks the key property: for every architecture
the expected overhead (cycles, energy, octets) is monotonically
non-decreasing in the loss rate.
"""

import copy

import pytest

from repro.analysis import resilience
from repro.drm.roap.faults import FaultPlan, FaultyChannel
from repro.drm.session import RetryPolicy, RoapSession
from repro.usecases.world import DRMWorld

BITS = 512
SEED = "bench-fault-overhead"
LOSS_RATES = (0.0, 0.05, 0.10, 0.20, 0.40)


@pytest.fixture(scope="module")
def pristine():
    return DRMWorld.create(seed=SEED, rsa_bits=BITS)


def bench_resilience_sweep(benchmark, print_once):
    result = resilience.generate(seed=SEED, loss_rates=LOSS_RATES,
                                 rsa_bits=BITS)
    print_once("resilience", result.render())
    benchmark(resilience.generate, seed=SEED, loss_rates=LOSS_RATES,
              rsa_bits=BITS)


def bench_lossy_registration(benchmark, pristine):
    def run():
        world = copy.deepcopy(pristine)
        channel = FaultyChannel(world.ri, FaultPlan.lossy(SEED, 0.2),
                                clock=world.clock)
        session = RoapSession(world.agent, channel,
                              RetryPolicy(max_attempts=8))
        assert session.register().completed
    benchmark(run)


def check_monotone(result):
    """Overhead must be non-decreasing in loss rate, per architecture."""
    failures = []
    for architecture in result.architectures():
        rows = result.rows_for(architecture)
        for metric in ("overhead_cycles", "overhead_millijoules",
                       "overhead_octets"):
            values = [getattr(row, metric) for row in rows]
            if any(b < a for a, b in zip(values, values[1:])):
                failures.append("%s %s not monotone: %r"
                                % (architecture, metric, values))
    return failures


def test_overhead_monotone_in_loss():
    result = resilience.generate(seed=SEED, loss_rates=LOSS_RATES,
                                 rsa_bits=BITS)
    assert not check_monotone(result)


def main() -> int:
    result = resilience.generate(seed=SEED, loss_rates=LOSS_RATES,
                                 rsa_bits=BITS)
    print(result.render())
    failures = check_monotone(result)
    for failure in failures:
        print("FAIL: " + failure)
    print("monotonicity %s" % ("FAILED" if failures else "PASSED"))
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
