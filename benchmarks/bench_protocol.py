"""Wall-clock timings of the functional OMA DRM 2 protocol stack.

Times the real end-to-end flows (512-bit keys to keep the host cost in
milliseconds) — useful when using the functional model interactively or
in CI, and a regression guard for the protocol hot paths.
"""

import copy

import pytest

from repro.drm.rel import play_count
from repro.usecases.world import DRMWorld

BITS = 512
CONTENT = b"\xbe" * 4096


@pytest.fixture(scope="module")
def pristine():
    world = DRMWorld.create(seed="bench-protocol", rsa_bits=BITS)
    world.ci.publish("cid:b", "audio/mpeg", CONTENT, "u")
    world.ri.add_offer("ro:b", world.ci.negotiate_license("cid:b"),
                       play_count(10 ** 9))
    return world


def bench_registration(benchmark, pristine):
    def run():
        world = copy.deepcopy(pristine)
        world.agent.register(world.ri)
    benchmark(run)


def bench_acquire_and_install(benchmark, pristine):
    registered = copy.deepcopy(pristine)
    registered.agent.register(registered.ri)

    def run():
        world = copy.deepcopy(registered)
        protected = world.agent.acquire(world.ri, "ro:b")
        world.agent.install(protected, world.ci.get_dcf("cid:b"))
    benchmark(run)


def bench_consume_4k(benchmark, pristine):
    world = copy.deepcopy(pristine)
    world.agent.register(world.ri)
    protected = world.agent.acquire(world.ri, "ro:b")
    world.agent.install(protected, world.ci.get_dcf("cid:b"))
    result = benchmark(world.agent.consume, "cid:b")
    assert result.clear_content == CONTENT
