"""Shared benchmark fixtures.

Paper-scale traces are built once per session (they cost seconds of RSA
key generation) and the benchmarks time the *model evaluation* — pricing a
trace under an architecture — which is what a user of this library runs in
a loop when exploring design spaces.

Every bench module prints the regenerated table/figure once, so running
``pytest benchmarks/ --benchmark-only -s`` reproduces the paper's
artifacts alongside the timing statistics.
"""

import pytest

from repro.analysis.common import DEFAULT_SEED, music_trace, ringtone_trace
from repro.core.model import PerformanceModel


@pytest.fixture(scope="session")
def model():
    return PerformanceModel()


@pytest.fixture(scope="session")
def music():
    return music_trace(DEFAULT_SEED)


@pytest.fixture(scope="session")
def ring():
    return ringtone_trace(DEFAULT_SEED)


_printed = set()


@pytest.fixture()
def print_once():
    """Print an artifact at most once per session (benchmarks re-run)."""
    def printer(key, text):
        if key not in _printed:
            _printed.add(key)
            print("\n" + text + "\n")
    return printer
