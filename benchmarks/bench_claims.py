"""Experiment ``pki600``: the in-text claims (PKI ~600 ms and friends)."""

from repro.analysis import claims


def bench_claims(benchmark, print_once):
    result = benchmark(claims.generate)
    assert abs(result.pki_ms_music - 600) < 30
    assert result.pki_identical_across_use_cases
    print_once("claims", result.render())
