"""Durability pricing: journal overhead and recovery-replay scaling.

Two things are measured here:

* the cost of the *analysis* — the volatile-vs-journaled calibration
  pair plus the metered reboot replay behind
  :func:`repro.analysis.durability.generate` (512-bit keys keep the
  host cost in milliseconds), and
* the cost of the *simulation* — one journaled protocol run and one
  recovery replay over a long journal, timed at the storage layer.

Run directly (``python benchmarks/bench_durability.py``) it prints the
durability tables and checks the key properties: journal overhead is a
strictly positive but sub-baseline cost in every phase, and projected
recovery time is monotonically non-decreasing in journal length.
"""

import copy

import pytest

from repro.analysis import durability
from repro.core.meter import PlainCrypto
from repro.store import TransactionalStorage
from repro.usecases.durability import measure_durability
from repro.usecases.world import DRMWorld

BITS = 512
SEED = "bench-durability"
JOURNAL_LENGTHS = (8, 64, 512, 4096)

#: Journal records for the storage-layer recovery benchmark.
REPLAY_RECORDS = 256


@pytest.fixture(scope="module")
def pristine_durable():
    return DRMWorld.create(seed=SEED, rsa_bits=BITS, durable=True)


def _loaded_flash():
    storage = TransactionalStorage(PlainCrypto(), b"\x42" * 16)
    for index in range(REPLAY_RECORDS // 2):  # op + commit per txn
        storage.remember(("ro-%d" % index, "nonce"))
    return storage.journal.flash


def bench_durability_sweep(benchmark, print_once):
    result = durability.generate(seed=SEED,
                                 journal_lengths=JOURNAL_LENGTHS,
                                 rsa_bits=BITS)
    print_once("durability", result.render())
    benchmark(durability.generate, seed=SEED,
              journal_lengths=JOURNAL_LENGTHS, rsa_bits=BITS)


def bench_journaled_registration(benchmark, pristine_durable):
    def run():
        world = copy.deepcopy(pristine_durable)
        world.agent.register(world.ri)
        assert len(world.agent.storage.journal.flash) > 0
    benchmark(run)


def bench_recovery_replay(benchmark):
    flash = _loaded_flash()
    crypto = PlainCrypto()

    def run():
        recovered, report = TransactionalStorage.recover(
            crypto, b"\x42" * 16, flash)
        assert report.transactions_applied == REPLAY_RECORDS // 2
    benchmark(run)


def check_properties(result):
    """Overhead positive yet below baseline; replay monotone in length."""
    failures = []
    for overhead in result.overheads:
        if not 0 < overhead.overhead_cycles < overhead.baseline_cycles:
            failures.append(
                "%s %s overhead %d outside (0, baseline %d)"
                % (overhead.architecture, overhead.phase,
                   overhead.overhead_cycles, overhead.baseline_cycles))
    by_arch = {}
    for projection in result.projections:
        by_arch.setdefault(projection.architecture, []).append(
            (projection.records, projection.cycles))
    for architecture, pairs in by_arch.items():
        ordered = [cycles for _, cycles in sorted(pairs)]
        if any(b < a for a, b in zip(ordered, ordered[1:])):
            failures.append("%s replay cost not monotone: %r"
                            % (architecture, ordered))
    return failures


def test_durability_properties():
    result = durability.generate(seed=SEED,
                                 journal_lengths=JOURNAL_LENGTHS,
                                 rsa_bits=BITS)
    assert not check_properties(result)


def main() -> int:
    result = durability.generate(seed=SEED,
                                 journal_lengths=JOURNAL_LENGTHS,
                                 rsa_bits=BITS)
    print(result.render())
    measurement = measure_durability(SEED, rsa_bits=BITS)
    print("\nrecovery replayed %d transactions over %d records"
          % (measurement.recovery_transactions_applied,
             measurement.templates.recovery_records))
    failures = check_properties(result)
    for failure in failures:
        print("FAIL: " + failure)
    print("durability properties %s"
          % ("FAILED" if failures else "PASSED"))
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
