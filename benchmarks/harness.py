"""Shared benchmark artifact schema: ``BENCH_<name>.json``.

Every bench script under ``benchmarks/`` historically wrote its own
ad-hoc JSON shape, so nothing downstream could read them uniformly.
This module is the one schema they all emit now (``schema: 1``,
``kind: "bench-report"``):

* a :class:`Metric` is one measured number with a ``direction``
  ("higher" or "lower" is better) and an optional ``tolerance_pct``.
  Metrics with a tolerance are *gated* — the trajectory aggregator
  (:mod:`repro.perf.trajectory`) fails the build when they drift
  outside the band relative to their reference. Metrics without one
  (wall-clock timings, events/s) are informational: tracked across
  PRs, never load-bearing, because CI hosts are noisy.
* a :class:`BenchReport` is one script's run: its pinned seed, the git
  revision, its metrics, and its ``verdicts`` — the script's own
  pass/fail gates (replay determinism, smoke contracts), all of which
  must be true.

Deterministic metrics (event counts, goodput ratios, collapse
durations — anything derived from the virtual timebase) should be
gated with ``tolerance_pct=0.0``: they are bit-exact per seed, so any
drift is a real behavior change, not noise.

The module lives in ``benchmarks/`` (not the package) because the
bench scripts are standalone: ``python benchmarks/bench_kernel.py``
puts this directory on ``sys.path``, and pytest's rootdir insertion
does the same for the collected ``bench_*`` tests.
"""

import json
import pathlib
import subprocess
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

#: Artifact schema version; bump on incompatible shape changes.
SCHEMA = 1

#: The ``kind`` discriminator the trajectory loader checks.
KIND = "bench-report"

DIRECTIONS = ("higher", "lower")


def git_rev() -> str:
    """The short revision the bench ran at; ``unknown`` off-repo."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=str(pathlib.Path(__file__).resolve().parent),
            capture_output=True, text=True, timeout=10, check=False)
    except OSError:
        return "unknown"
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else "unknown"


@dataclass(frozen=True)
class Metric:
    """One measured number with its regression-gating policy."""

    name: str
    value: float
    unit: str
    #: Which way is good: "higher" (throughput) or "lower" (latency).
    direction: str = "higher"
    #: Regression band in percent of the reference value; ``None``
    #: means informational (tracked, never gated). ``0.0`` means the
    #: value must match its reference exactly — the right setting for
    #: anything deterministic per seed.
    tolerance_pct: Optional[float] = None

    def __post_init__(self) -> None:
        if self.direction not in DIRECTIONS:
            raise ValueError("direction must be one of %r, got %r"
                             % (DIRECTIONS, self.direction))
        if self.tolerance_pct is not None and self.tolerance_pct < 0:
            raise ValueError("tolerance_pct must be >= 0")

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "value": self.value,
            "unit": self.unit,
            "direction": self.direction,
            "tolerance_pct": self.tolerance_pct,
        }


@dataclass
class BenchReport:
    """One bench script's run: metrics plus its own gate verdicts."""

    bench: str
    seed: str
    metrics: Tuple[Metric, ...] = ()
    #: The script's own pass/fail gates (replay determinism, smoke
    #: contracts). Every verdict must be true for the report to pass.
    verdicts: Dict[str, bool] = field(default_factory=dict)
    rev: str = field(default_factory=git_rev)

    @property
    def passed(self) -> bool:
        """Whether every in-script gate held."""
        return all(self.verdicts.values())

    def metric(self, name: str) -> Metric:
        for entry in self.metrics:
            if entry.name == name:
                return entry
        raise KeyError(name)

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": SCHEMA,
            "kind": KIND,
            "bench": self.bench,
            "seed": self.seed,
            "git_rev": self.rev,
            "metrics": [metric.to_dict() for metric in self.metrics],
            "verdicts": dict(sorted(self.verdicts.items())),
        }

    def write(self, path: str) -> None:
        """Write the artifact deterministically (sorted, newline)."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
