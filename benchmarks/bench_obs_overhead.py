"""NullTracer overhead budget on the protocol scenarios.

The observability layer's zero-overhead claim (``docs/observability.md``)
is that with the default :class:`~repro.obs.tracer.NullTracer` every
instrumented call site costs one attribute lookup plus one constant
no-op call. This benchmark makes that claim a gate:

1. count the instrumentation calls (spans, events, operation records)
   one run of each ``bench_protocol`` scenario actually performs, using
   a counting tracer;
2. measure the per-call cost of the real ``NULL_TRACER`` methods in a
   tight loop;
3. measure the scenario's wall time with the default tracer;
4. assert ``calls x per-call-cost < 5 %`` of the scenario time.

Measuring the null-path cost directly (instead of diffing two noisy
end-to-end timings) keeps the gate stable on loaded CI hosts while
still bounding exactly the quantity users care about: what tracing-off
costs. Run directly (``python benchmarks/bench_obs_overhead.py``) it
prints the per-scenario budget table and exits non-zero on a breach.
"""

import copy
import time

import pytest

from repro.core.trace import Algorithm, OperationRecord, Phase
from repro.drm.rel import play_count
from repro.obs.tracer import NULL_TRACER
from repro.usecases.world import DRMWorld

BITS = 512
SEED = "bench-obs-overhead"
CONTENT = b"\xbe" * 4096

#: The gate: NullTracer instrumentation cost per scenario run.
BUDGET_FRACTION = 0.05

#: Iterations for the per-call micro-measurement.
MICRO_LOOPS = 200_000

#: Wall-time repeats per scenario (minimum is reported).
REPEATS = 3


class CountingTracer:
    """Counts instrumentation call sites; behaves like NullTracer."""

    enabled = False
    now = 0

    class _Span:
        def set(self, key, value):
            pass

    class _Context:
        def __init__(self, outer):
            self._outer = outer

        def __enter__(self):
            return self._outer._span

        def __exit__(self, *exc):
            return False

    def __init__(self):
        self.calls = 0
        self._span = self._Span()
        self._context = self._Context(self)

    def span(self, name, track="main", category="structure", **args):
        self.calls += 1
        return self._context

    def event(self, name, track="main", **args):
        self.calls += 1
        return None

    def on_record(self, record):
        self.calls += 1
        return None


def _pristine(tracer=None):
    world = DRMWorld.create(seed=SEED, rsa_bits=BITS, tracer=tracer)
    world.ci.publish("cid:b", "audio/mpeg", CONTENT, "u")
    world.ri.add_offer("ro:b", world.ci.negotiate_license("cid:b"),
                       play_count(10 ** 9))
    return world


def _scenario_registration(world):
    world.agent.register(world.ri)


def _scenario_acquire_install(world):
    world.agent.register(world.ri)
    protected = world.agent.acquire(world.ri, "ro:b")
    world.agent.install(protected, world.ci.get_dcf("cid:b"))


def _scenario_consume(world):
    world.agent.register(world.ri)
    protected = world.agent.acquire(world.ri, "ro:b")
    world.agent.install(protected, world.ci.get_dcf("cid:b"))
    world.agent.consume("cid:b")


SCENARIOS = (
    ("registration", _scenario_registration),
    ("acquire+install", _scenario_acquire_install),
    ("consume-4k", _scenario_consume),
)


def null_call_cost() -> float:
    """Conservative per-call cost (seconds) of NULL_TRACER methods."""
    record = OperationRecord(algorithm=Algorithm.SHA1,
                             phase=Phase.REGISTRATION,
                             invocations=1, blocks=4, label="probe")
    costs = []
    start = time.perf_counter()
    for _ in range(MICRO_LOOPS):
        NULL_TRACER.on_record(record)
    costs.append((time.perf_counter() - start) / MICRO_LOOPS)
    start = time.perf_counter()
    for _ in range(MICRO_LOOPS):
        with NULL_TRACER.span("probe", track="t"):
            pass
    costs.append((time.perf_counter() - start) / MICRO_LOOPS)
    start = time.perf_counter()
    for _ in range(MICRO_LOOPS):
        NULL_TRACER.event("probe", track="t")
    costs.append((time.perf_counter() - start) / MICRO_LOOPS)
    return max(costs)


def instrumentation_calls(scenario) -> int:
    """How many tracer calls one run of ``scenario`` performs."""
    tracer = CountingTracer()
    scenario(_pristine(tracer=tracer))
    return tracer.calls


def scenario_seconds(scenario) -> float:
    """Minimum wall time of ``scenario`` with the default NullTracer."""
    worlds = [_pristine() for _ in range(REPEATS)]
    best = None
    for world in worlds:
        start = time.perf_counter()
        scenario(world)
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best


def overhead_rows():
    """(name, calls, per-call s, scenario s, fraction) per scenario."""
    per_call = null_call_cost()
    rows = []
    for name, scenario in SCENARIOS:
        calls = instrumentation_calls(scenario)
        seconds = scenario_seconds(scenario)
        fraction = (calls * per_call) / seconds
        rows.append((name, calls, per_call, seconds, fraction))
    return rows


# -- pytest-benchmark entry points ------------------------------------------

@pytest.fixture(scope="module")
def pristine():
    return _pristine()


def bench_null_tracer_consume(benchmark, pristine):
    def run():
        _scenario_consume(copy.deepcopy(pristine))
    benchmark(run)


def test_null_tracer_overhead_within_budget():
    for name, calls, per_call, seconds, fraction in overhead_rows():
        assert fraction < BUDGET_FRACTION, (
            "%s: %d null-tracer calls x %.1f ns = %.2f%% of %.1f ms "
            "(budget %.0f%%)"
            % (name, calls, per_call * 1e9, 100.0 * fraction,
               seconds * 1e3, 100.0 * BUDGET_FRACTION))


def main() -> int:
    failures = 0
    print("%-16s %8s %12s %12s %9s" % (
        "scenario", "calls", "per-call[ns]", "runtime[ms]", "overhead"))
    for name, calls, per_call, seconds, fraction in overhead_rows():
        print("%-16s %8d %12.1f %12.2f %8.3f%%" % (
            name, calls, per_call * 1e9, seconds * 1e3,
            100.0 * fraction))
        if fraction >= BUDGET_FRACTION:
            failures += 1
    print("NullTracer overhead budget (<%.0f%%) %s"
          % (100.0 * BUDGET_FRACTION,
             "FAILED" if failures else "PASSED"))
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
