"""NullTracer overhead budget on the protocol scenarios.

The observability layer's zero-overhead claim (``docs/observability.md``)
is that with the default :class:`~repro.obs.tracer.NullTracer` every
instrumented call site costs one attribute lookup plus one constant
no-op call. This benchmark makes that claim a gate:

1. count the instrumentation calls (spans, events, operation records)
   one run of each ``bench_protocol`` scenario actually performs, using
   a counting tracer;
2. measure the per-call cost of the real ``NULL_TRACER`` methods in a
   tight loop;
3. measure the scenario's wall time with the default tracer;
4. assert ``calls x per-call-cost < 5 %`` of the scenario time.

Measuring the null-path cost directly (instead of diffing two noisy
end-to-end timings) keeps the gate stable on loaded CI hosts while
still bounding exactly the quantity users care about: what tracing-off
costs.

The same method gates the *profiler-enabled* path: per-call cost of
the real :class:`~repro.obs.tracer.Tracer` methods (which allocate a
span and advance the virtual clock) times the call count, plus the
one-shot :class:`~repro.obs.profile.ProfileTree` fold, must stay under
5 % of the scenario runtime — profiling a run should never distort
what it profiles.

Run directly (``python benchmarks/bench_obs_overhead.py``) it prints
the per-scenario budget table, emits ``BENCH_obs_overhead.json`` in
the shared bench-report schema (``benchmarks/harness.py``; call counts
gated, wall-derived fractions informational) and exits non-zero on a
budget breach. ``--out PATH`` redirects the artifact.
"""

import copy
import sys
import time

import pytest

import harness

from repro.core.trace import Algorithm, OperationRecord, Phase
from repro.drm.rel import play_count
from repro.obs.profile import ProfileTree
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.usecases.world import DRMWorld

BITS = 512
SEED = "bench-obs-overhead"
CONTENT = b"\xbe" * 4096

#: The gate: NullTracer instrumentation cost per scenario run.
BUDGET_FRACTION = 0.05

#: The gate with profiling *on*: real-Tracer instrumentation plus the
#: profile fold per scenario run.
PROFILED_BUDGET_FRACTION = 0.05

#: Iterations for the per-call micro-measurement.
MICRO_LOOPS = 200_000

#: Wall-time repeats per scenario (minimum is reported).
REPEATS = 3


class CountingTracer:
    """Counts instrumentation call sites; behaves like NullTracer."""

    enabled = False
    now = 0

    class _Span:
        def set(self, key, value):
            pass

    class _Context:
        def __init__(self, outer):
            self._outer = outer

        def __enter__(self):
            return self._outer._span

        def __exit__(self, *exc):
            return False

    def __init__(self):
        self.calls = 0
        self._span = self._Span()
        self._context = self._Context(self)

    def span(self, name, track="main", category="structure", **args):
        self.calls += 1
        return self._context

    def event(self, name, track="main", **args):
        self.calls += 1
        return None

    def on_record(self, record):
        self.calls += 1
        return None


def _pristine(tracer=None):
    world = DRMWorld.create(seed=SEED, rsa_bits=BITS, tracer=tracer)
    world.ci.publish("cid:b", "audio/mpeg", CONTENT, "u")
    world.ri.add_offer("ro:b", world.ci.negotiate_license("cid:b"),
                       play_count(10 ** 9))
    return world


def _scenario_registration(world):
    world.agent.register(world.ri)


def _scenario_acquire_install(world):
    world.agent.register(world.ri)
    protected = world.agent.acquire(world.ri, "ro:b")
    world.agent.install(protected, world.ci.get_dcf("cid:b"))


def _scenario_consume(world):
    world.agent.register(world.ri)
    protected = world.agent.acquire(world.ri, "ro:b")
    world.agent.install(protected, world.ci.get_dcf("cid:b"))
    world.agent.consume("cid:b")


SCENARIOS = (
    ("registration", _scenario_registration),
    ("acquire+install", _scenario_acquire_install),
    ("consume-4k", _scenario_consume),
)


def null_call_cost() -> float:
    """Conservative per-call cost (seconds) of NULL_TRACER methods."""
    record = OperationRecord(algorithm=Algorithm.SHA1,
                             phase=Phase.REGISTRATION,
                             invocations=1, blocks=4, label="probe")
    costs = []
    start = time.perf_counter()
    for _ in range(MICRO_LOOPS):
        NULL_TRACER.on_record(record)
    costs.append((time.perf_counter() - start) / MICRO_LOOPS)
    start = time.perf_counter()
    for _ in range(MICRO_LOOPS):
        with NULL_TRACER.span("probe", track="t"):
            pass
    costs.append((time.perf_counter() - start) / MICRO_LOOPS)
    start = time.perf_counter()
    for _ in range(MICRO_LOOPS):
        NULL_TRACER.event("probe", track="t")
    costs.append((time.perf_counter() - start) / MICRO_LOOPS)
    return max(costs)


def real_call_cost() -> float:
    """Conservative per-call cost (seconds) of real Tracer methods.

    A fresh tracer per micro-loop: the measured cost includes the span
    allocation and list append the profiler's input actually pays.
    """
    record = OperationRecord(algorithm=Algorithm.SHA1,
                             phase=Phase.REGISTRATION,
                             invocations=1, blocks=4, label="probe")
    costs = []
    tracer = Tracer()
    start = time.perf_counter()
    for _ in range(MICRO_LOOPS):
        tracer.on_record(record)
    costs.append((time.perf_counter() - start) / MICRO_LOOPS)
    tracer = Tracer()
    start = time.perf_counter()
    for _ in range(MICRO_LOOPS):
        with tracer.span("probe", track="t"):
            pass
    costs.append((time.perf_counter() - start) / MICRO_LOOPS)
    tracer = Tracer()
    start = time.perf_counter()
    for _ in range(MICRO_LOOPS):
        tracer.event("probe", track="t")
    costs.append((time.perf_counter() - start) / MICRO_LOOPS)
    return max(costs)


def fold_seconds(scenario) -> float:
    """Wall cost of folding one real-traced run into a ProfileTree."""
    tracer = Tracer()
    scenario(_pristine(tracer=tracer))
    start = time.perf_counter()
    ProfileTree.from_tracer(tracer)
    return time.perf_counter() - start


def instrumentation_calls(scenario) -> int:
    """How many tracer calls one run of ``scenario`` performs."""
    tracer = CountingTracer()
    scenario(_pristine(tracer=tracer))
    return tracer.calls


def scenario_seconds(scenario) -> float:
    """Minimum wall time of ``scenario`` with the default NullTracer."""
    worlds = [_pristine() for _ in range(REPEATS)]
    best = None
    for world in worlds:
        start = time.perf_counter()
        scenario(world)
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best


def overhead_rows():
    """(name, calls, per-call s, scenario s, fraction) per scenario."""
    per_call = null_call_cost()
    rows = []
    for name, scenario in SCENARIOS:
        calls = instrumentation_calls(scenario)
        seconds = scenario_seconds(scenario)
        fraction = (calls * per_call) / seconds
        rows.append((name, calls, per_call, seconds, fraction))
    return rows


def profiled_rows():
    """(name, calls, per-call s, fold s, scenario s, fraction)."""
    per_call = real_call_cost()
    rows = []
    for name, scenario in SCENARIOS:
        calls = instrumentation_calls(scenario)
        seconds = scenario_seconds(scenario)
        fold = fold_seconds(scenario)
        fraction = (calls * per_call + fold) / seconds
        rows.append((name, calls, per_call, fold, seconds, fraction))
    return rows


# -- pytest-benchmark entry points ------------------------------------------

@pytest.fixture(scope="module")
def pristine():
    return _pristine()


def bench_null_tracer_consume(benchmark, pristine):
    def run():
        _scenario_consume(copy.deepcopy(pristine))
    benchmark(run)


def test_null_tracer_overhead_within_budget():
    for name, calls, per_call, seconds, fraction in overhead_rows():
        assert fraction < BUDGET_FRACTION, (
            "%s: %d null-tracer calls x %.1f ns = %.2f%% of %.1f ms "
            "(budget %.0f%%)"
            % (name, calls, per_call * 1e9, 100.0 * fraction,
               seconds * 1e3, 100.0 * BUDGET_FRACTION))


def test_profiled_tracer_overhead_within_budget():
    for name, calls, per_call, fold, seconds, fraction \
            in profiled_rows():
        assert fraction < PROFILED_BUDGET_FRACTION, (
            "%s: %d tracer calls x %.1f ns + %.1f us fold = %.2f%% "
            "of %.1f ms (budget %.0f%%)"
            % (name, calls, per_call * 1e9, fold * 1e6,
               100.0 * fraction, seconds * 1e3,
               100.0 * PROFILED_BUDGET_FRACTION))


def main(argv) -> int:
    out = "BENCH_obs_overhead.json"
    if "--out" in argv:
        out = argv[argv.index("--out") + 1]

    null_failures = 0
    profiled_failures = 0
    metrics = []
    print("%-16s %8s %12s %12s %9s" % (
        "scenario", "calls", "per-call[ns]", "runtime[ms]", "overhead"))
    for name, calls, per_call, seconds, fraction in overhead_rows():
        print("%-16s %8d %12.1f %12.2f %8.3f%%" % (
            name, calls, per_call * 1e9, seconds * 1e3,
            100.0 * fraction))
        if fraction >= BUDGET_FRACTION:
            null_failures += 1
        # Call counts are deterministic (one per instrumented call
        # site); the fractions are wall-derived, so informational.
        metrics.extend([
            harness.Metric("%s.instrumentation_calls" % name, calls,
                           "calls", direction="lower",
                           tolerance_pct=0.0),
            harness.Metric("%s.null_overhead_fraction" % name,
                           fraction, "ratio", direction="lower"),
        ])
    print("NullTracer overhead budget (<%.0f%%) %s"
          % (100.0 * BUDGET_FRACTION,
             "FAILED" if null_failures else "PASSED"))

    print("%-16s %8s %12s %10s %12s %9s" % (
        "profiled", "calls", "per-call[ns]", "fold[us]",
        "runtime[ms]", "overhead"))
    for name, calls, per_call, fold, seconds, fraction \
            in profiled_rows():
        print("%-16s %8d %12.1f %10.1f %12.2f %8.3f%%" % (
            name, calls, per_call * 1e9, fold * 1e6, seconds * 1e3,
            100.0 * fraction))
        if fraction >= PROFILED_BUDGET_FRACTION:
            profiled_failures += 1
        metrics.append(
            harness.Metric("%s.profiled_overhead_fraction" % name,
                           fraction, "ratio", direction="lower"))
    print("profiler-on overhead budget (<%.0f%%) %s"
          % (100.0 * PROFILED_BUDGET_FRACTION,
             "FAILED" if profiled_failures else "PASSED"))

    report = harness.BenchReport(
        bench="obs_overhead", seed=SEED, metrics=tuple(metrics),
        verdicts={"null-overhead-budget": not null_failures,
                  "profiled-overhead-budget": not profiled_failures})
    report.write(out)
    print("wrote %s" % out)
    return 1 if null_failures or profiled_failures else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
