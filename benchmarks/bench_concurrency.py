"""Offload concurrency: the macros' second benefit, quantified.

The paper (§3): hardware macros "are much faster and leave the processor
free to do other jobs in parallel". This bench reports CPU-busy versus
wall-clock time for the Music Player under the mixed architecture.
"""

from repro.analysis.formatting import format_ms, format_table
from repro.core.architecture import PAPER_PROFILES
from repro.core.concurrency import analyze
from repro.core.model import PerformanceModel


def bench_concurrency_music(benchmark, model, music, print_once):
    def run():
        return [
            analyze(model.evaluate(music, profile), overlap=1.0)
            for profile in PAPER_PROFILES
        ]

    results = benchmark(run)
    rows = []
    for profile, result in zip(PAPER_PROFILES, results):
        rows.append((
            profile.name, format_ms(result.wall_clock_ms),
            format_ms(result.cpu_busy_ms),
            "%.1f%%" % (100.0 * result.cpu_freed_fraction),
        ))
    print_once("concurrency", format_table(
        ("arch", "wall clock [ms]", "CPU busy [ms]", "CPU freed"),
        rows, title="Music Player: CPU offload with perfect overlap"))
    # Software keeps the CPU fully busy; full hardware frees nearly all.
    assert results[0].cpu_freed_fraction == 0.0
    assert results[2].cpu_freed_fraction > 0.95
