"""Experiment ``fig6``: Music Player totals under SW / SW-HW / HW.

Paper series: 7730 / 800 / 190 ms. The benchmark times the pricing of the
paper-scale trace under all three architecture profiles.
"""

from repro.analysis import figure6
from repro.core.architecture import PAPER_PROFILES


def bench_figure6_pricing(benchmark, model, music):
    breakdowns = benchmark(model.compare, music, PAPER_PROFILES)
    totals = [b.total_ms for b in breakdowns]
    assert totals[0] > totals[1] > totals[2]


def bench_figure6_full(benchmark, print_once):
    result = benchmark(figure6.generate)
    for name, paper_value in figure6.PAPER_MS.items():
        deviation = abs(result.measured_ms[name] - paper_value)
        assert deviation / paper_value < 0.10
    print_once("fig6", result.render())
