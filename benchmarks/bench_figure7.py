"""Experiment ``fig7``: Ringtone totals under SW / SW-HW / HW.

Paper series: 900 / 620 / 12 ms.
"""

from repro.analysis import figure7
from repro.core.architecture import PAPER_PROFILES


def bench_figure7_pricing(benchmark, model, ring):
    breakdowns = benchmark(model.compare, ring, PAPER_PROFILES)
    totals = [b.total_ms for b in breakdowns]
    assert totals[0] > totals[1] > totals[2]


def bench_figure7_full(benchmark, print_once):
    result = benchmark(figure7.generate)
    for name, paper_value in figure7.PAPER_MS.items():
        deviation = abs(result.measured_ms[name] - paper_value)
        assert deviation / paper_value < 0.10
    print_once("fig7", result.render())
