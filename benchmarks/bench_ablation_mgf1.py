"""Ablation ``abl-mgf1``: the paper's one-hash EMSA-PSS approximation."""

from repro.analysis import ablations


def bench_ablation_mgf1(benchmark, print_once):
    result = benchmark.pedantic(ablations.mgf1_sensitivity, rounds=1, iterations=1)
    differences = [abs(float(row[4].rstrip("%"))) for row in result.rows]
    assert all(d < 0.1 for d in differences)
    print_once("abl-mgf1", result.render())
