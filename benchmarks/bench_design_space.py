"""Design-space sweep: all macro subsets, Pareto frontiers, marginal value.

Extends the paper's closing §4 discussion (is a PKI macro worth its
gates?) into a full enumeration for both use cases.
"""

from repro.analysis.formatting import format_ms, format_table
from repro.core.design_space import (enumerate_design_points,
                                     marginal_value, pareto_frontier)


def bench_design_space_music(benchmark, music, print_once):
    points = benchmark(enumerate_design_points, music)
    frontier = pareto_frontier(points)
    assert frontier[0].name == "SW-only"
    rows = [
        (p.name, "%.0f" % p.kgates, format_ms(p.time_ms),
         "yes" if p in frontier else "")
        for p in points
    ]
    print_once("ds-music", format_table(
        ("macro set", "kgates", "time [ms]", "Pareto"), rows,
        title="Design space: Music Player"))


def bench_design_space_ringtone(benchmark, ring, print_once):
    points = benchmark(enumerate_design_points, ring)
    values = marginal_value(points)
    # The ringtone values the RSA macro most per saved millisecond...
    assert values["RSA"]["saved_ms"] > values["AES"]["saved_ms"]
    # ...but per kilogate the cheap AES macro can still compete.
    rows = [
        (macro, "%.2fx" % stats["speedup"],
         format_ms(stats["saved_ms"]),
         "%.2f" % stats["saved_ms_per_kgate"])
        for macro, stats in values.items()
    ]
    print_once("ds-ring", format_table(
        ("macro", "speedup", "saved [ms]", "saved ms/kgate"), rows,
        title="Marginal macro value: Ringtone"))
