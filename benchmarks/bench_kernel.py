"""Event-kernel throughput: events/second at 10^4 concurrent sessions.

Two workloads, both pure kernel mechanics (no RSA key generation, no
protocol stack), so the number measured is the scheduler itself:

* **open-load RI** — 10^4 Poisson request arrivals contending for one
  hardware-profile Rights Issuer signing unit (the saturation
  experiment's inner loop);
* **M/M/1 queue** — 10^4 jobs through the queueing-law harness (the
  validation suite's inner loop).

Run directly (``python benchmarks/bench_kernel.py``) it prints the
throughput table, re-runs each workload to prove bit-identical
statistics (the determinism contract under timing pressure), and emits
``BENCH_kernel.json`` in the shared bench-report schema
(``benchmarks/harness.py``): event counts are gated (deterministic per
seed), wall-clock throughput is informational. ``--out PATH``
redirects the artifact.
"""

import sys
import time

import harness

from repro.core.architecture import HW_PROFILE
from repro.sim.fleet import run_open_load
from repro.sim.queueing import exponential_draw, simulate_queue

SESSIONS = 10_000
SEED = "bench-kernel"

#: Arrival rate for the open-load workload: 60% of the hardware RI's
#: nominal capacity — busy but not saturated, so the heap stays deep.
OPEN_LOAD_RATE = 730.0


def _open_load():
    result = run_open_load(SEED, HW_PROFILE,
                           arrivals_per_second=OPEN_LOAD_RATE,
                           requests=SESSIONS)
    load = result.load
    return load.events, (load.served, load.refused, load.span_ticks,
                         load.latency, load.utilization)


def _mm1():
    obs = simulate_queue(SEED, SESSIONS,
                         interarrival=exponential_draw(1500),
                         service=exponential_draw(1000))
    return obs.events, (obs.completed, obs.span_ticks, obs.queue_area,
                        obs.busy_area, obs.wait.summary())


WORKLOADS = (("open-load-ri", _open_load), ("mm1-queue", _mm1))


def measure(workload):
    start = time.perf_counter()
    events, signature = workload()
    wall = time.perf_counter() - start
    return {"events": events, "wall_seconds": wall,
            "events_per_second": events / wall}, signature


def bench_kernel_open_load(benchmark):
    benchmark(_open_load)


def test_workloads_replay_bit_identically():
    for _name, workload in WORKLOADS:
        _, first = workload()
        _, second = workload()
        assert first == second


def main(argv) -> int:
    out = "BENCH_kernel.json"
    if "--out" in argv:
        out = argv[argv.index("--out") + 1]

    metrics = []
    failures = []
    print("workload      sessions  wall [s]   events     events/s")
    for name, workload in WORKLOADS:
        timing, signature = measure(workload)
        replay_timing, replay_signature = measure(workload)
        if replay_signature != signature:
            failures.append("%s diverged between runs" % name)
        best = min(timing, replay_timing,
                   key=lambda t: t["wall_seconds"])
        # Event counts are bit-exact per seed, so any drop is a real
        # scheduler change; wall-clock throughput is informational.
        metrics.extend([
            harness.Metric("%s.events" % name, best["events"],
                           "events", direction="higher",
                           tolerance_pct=0.0),
            harness.Metric("%s.events_per_second" % name,
                           best["events_per_second"], "events/s",
                           direction="higher"),
            harness.Metric("%s.wall_seconds" % name,
                           best["wall_seconds"], "s",
                           direction="lower"),
        ])
        print("%-13s %-9d %-10.2f %-10d %.0f"
              % (name, SESSIONS, best["wall_seconds"], best["events"],
                 best["events_per_second"]))

    report = harness.BenchReport(
        bench="kernel", seed=SEED, metrics=tuple(metrics),
        verdicts={"replay-determinism": not failures})
    report.write(out)
    print("wrote %s" % out)

    for failure in failures:
        print("FAIL: " + failure)
    print("replay determinism %s"
          % ("FAILED" if failures else "PASSED"))
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
