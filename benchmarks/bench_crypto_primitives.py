"""Wall-clock throughput of the from-scratch crypto substrate.

These are real (host CPU) timings of the pure-Python primitives — not the
paper's cycle model. They document what the functional simulation can
sustain and guard against performance regressions in the hot paths the
functional tests depend on.
"""

import pytest

from repro.crypto.aes import AES
from repro.crypto.hmac import hmac_sha1
from repro.crypto.keywrap import unwrap, wrap
from repro.crypto.modes import cbc_decrypt, cbc_encrypt
from repro.crypto.pss import pss_sign, pss_verify
from repro.crypto.rng import HmacDrbg
from repro.crypto.rsa import generate_keypair
from repro.crypto.sha1 import sha1

BLOCK = b"\x5a" * 16
BULK_16K = b"\xa5" * 16_384


@pytest.fixture(scope="module")
def keypair():
    return generate_keypair(1024, HmacDrbg(b"bench-keys"))


def bench_aes_block_encrypt(benchmark):
    cipher = AES(b"k" * 16)
    benchmark(cipher.encrypt_block, BLOCK)


def bench_aes_block_decrypt(benchmark):
    cipher = AES(b"k" * 16)
    benchmark(cipher.decrypt_block, BLOCK)


def bench_aes_key_schedule(benchmark):
    benchmark(AES, b"k" * 16)


def bench_cbc_encrypt_16k(benchmark):
    benchmark(cbc_encrypt, b"k" * 16, b"i" * 16, BULK_16K)


def bench_cbc_decrypt_16k(benchmark):
    ciphertext = cbc_encrypt(b"k" * 16, b"i" * 16, BULK_16K)
    benchmark(cbc_decrypt, b"k" * 16, b"i" * 16, ciphertext)


def bench_sha1_16k(benchmark):
    benchmark(sha1, BULK_16K)


def bench_hmac_sha1_1k(benchmark):
    benchmark(hmac_sha1, b"key", BULK_16K[:1024])


def bench_key_wrap(benchmark):
    benchmark(wrap, b"k" * 16, b"d" * 32)


def bench_key_unwrap(benchmark):
    wrapped = wrap(b"k" * 16, b"d" * 32)
    benchmark(unwrap, b"k" * 16, wrapped)


def bench_rsa_pss_sign(benchmark, keypair):
    rng = HmacDrbg(b"bench-salt")
    benchmark(pss_sign, keypair, b"message", rng)


def bench_rsa_pss_verify(benchmark, keypair):
    signature = pss_sign(keypair, b"message", HmacDrbg(b"s"))
    benchmark(pss_verify, keypair.public_key, b"message", signature)
