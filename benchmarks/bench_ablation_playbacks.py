"""Ablation ``abl-playbacks``: sensitivity to the number of accesses."""

from repro.analysis import ablations


def bench_ablation_playbacks(benchmark, print_once):
    result = benchmark.pedantic(ablations.playback_sensitivity, rounds=1, iterations=1)
    music_ms = [float(row[1]) for row in result.rows]
    assert music_ms == sorted(music_ms)
    print_once("abl-playbacks", result.render())
